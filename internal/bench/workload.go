package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nest/internal/quota"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// Rig is one simulated appliance under test: the host resources, the
// simulated filesystem and a transfer manager built per experiment.
type Rig struct {
	Clock *sim.VirtualClock
	Host  *sim.Host
	FS    *storage.SimFS
	Mgr   *transfer.Manager
}

// NewRig builds a rig on the given profile. The manager options'
// Clock/Profile fields are filled in.
func NewRig(prof sim.Profile, mgrOpts transfer.Options, qm *quota.Manager) *Rig {
	clock := sim.NewVirtualClock()
	host := sim.NewHost(clock, prof)
	fs := storage.NewSimFS(host, 1<<40, qm)
	mgrOpts.Clock = clock
	mgrOpts.Profile = prof
	r := &Rig{Clock: clock, Host: host, FS: fs}
	clockDone := make(chan *transfer.Manager, 1)
	clock.Run(func() { clockDone <- transfer.NewManager(mgrOpts) })
	r.Mgr = <-clockDone
	return r
}

// PrepareFiles creates count files of size bytes and returns their
// paths; warm loads them into the buffer cache ("in-cache" workloads).
func (r *Rig) PrepareFiles(prefix string, count int, size int64, warm bool) []string {
	paths := make([]string, count)
	done := make(chan error, 1)
	r.Clock.Run(func() {
		for i := range paths {
			p := fmt.Sprintf("/%s%03d", prefix, i)
			paths[i] = p
			f, err := r.FS.Create(p, "bench")
			if err != nil {
				done <- err
				return
			}
			if err := f.Truncate(size); err != nil {
				done <- err
				return
			}
			f.Close()
		}
		// Creation dirtied the write-back path and the cache; reset to
		// a quiescent machine.
		r.FS.Cache().Clear()
		if warm {
			for _, p := range paths {
				r.FS.Warm(p)
			}
		}
		done <- nil
	})
	if err := <-done; err != nil {
		panic(err)
	}
	return paths
}

// linkWriter models the bytes of a reply crossing the shared wire;
// granularity sets the interleave unit (user-level chunk for NeST,
// TCP segment for the JBOS kernel servers).
type linkWriter struct {
	link *sim.Link
	gran int
}

func (w linkWriter) Write(p []byte) (int, error) {
	g := w.gran
	if g <= 0 {
		g = len(p)
	}
	for off := 0; off < len(p); off += g {
		end := off + g
		if end > len(p) {
			end = len(p)
		}
		w.link.Send(int64(end - off))
	}
	return len(p), nil
}

// cpuReader charges per-chunk processor work before delivering data
// from the file (GridFTP framing/integrity costs).
type cpuReader struct {
	inner    io.Reader
	cpu      *sim.CPU
	perChunk time.Duration
}

func (r cpuReader) Read(p []byte) (int, error) {
	if r.perChunk > 0 {
		r.cpu.Work(r.perChunk)
	}
	return r.inner.Read(p)
}

// ClientOptions configures one protocol's closed-loop client pool.
type ClientOptions struct {
	Spec    ProtoSpec
	Clients int
	Files   []string
	// JBOS selects the baseline's packet-granularity wire behavior.
	JBOS bool
	// PacketWire also selects packet granularity: used when the
	// transfer manager meters bandwidth itself (proportional share),
	// where modeling the wire at user-level chunk granularity would
	// double-count the bias the scheduler replaces.
	PacketWire bool
}

// RunClients drives closed-loop clients against mgr until *stop is
// nonzero. Each iteration issues one request (a whole file, or one
// block for block-based protocols), waiting for completion before the
// next — with Outstanding >= 2, that many requests stay in flight.
func (r *Rig) RunClients(mgr *transfer.Manager, o ClientOptions, stop *atomic.Bool, wg *sim.WaitGroup) {
	for c := 0; c < o.Clients; c++ {
		c := c
		out := o.Spec.Outstanding
		if out < 1 {
			out = 1
		}
		for lane := 0; lane < out; lane++ {
			wg.Add(1)
			start := (c*31 + lane*7) % len(o.Files)
			r.Clock.Go(func() {
				defer wg.Done()
				r.clientLoop(mgr, o, stop, start)
			})
		}
	}
}

// clientLoop is one request lane of one client.
func (r *Rig) clientLoop(mgr *transfer.Manager, o ClientOptions, stop *atomic.Bool, fileIdx int) {
	clock := r.Clock
	spec := o.Spec
	gran := spec.ChunkSize
	if o.JBOS || o.PacketWire {
		gran = PacketSize
	}
	var offset int64
	for !stop.Load() {
		path := o.Files[fileIdx%len(o.Files)]
		size := int64(0)
		f, err := r.FS.Open(path)
		if err != nil {
			panic(err)
		}
		fileSize := f.Size()

		var length int64
		if spec.BlockBased {
			length = spec.BlockSize
			if offset+length > fileSize {
				length = fileSize - offset
			}
		} else {
			offset = 0
			length = fileSize
		}
		size = length

		// Request travels to the server: one way latency plus the
		// server's per-request processing.
		clock.Sleep(r.Host.Link.RTT() / 2)
		r.Host.CPU.Work(spec.PerRequestCPU)

		var src io.Reader = io.NewSectionReader(f, offset, size)
		if spec.PerChunkCPU > 0 {
			src = cpuReader{inner: src, cpu: r.Host.CPU, perChunk: spec.PerChunkCPU}
		}
		done := make(chan transfer.Result, 1)
		mgr.Submit(&transfer.Transfer{
			Class:     spec.Name,
			Path:      path,
			Offset:    offset,
			Size:      size,
			ChunkSize: spec.ChunkSize,
			Src:       src,
			Dst:       linkWriter{link: r.Host.Link, gran: gran},
			OnDone: func(res transfer.Result) {
				clock.Unpark()
				done <- res
			},
		})
		clock.Park()
		<-done
		f.Close()
		// Reply completion reaches the client.
		clock.Sleep(r.Host.Link.RTT() / 2)

		if spec.BlockBased {
			offset += size
			if offset >= fileSize {
				offset = 0
				fileIdx++
			}
		} else {
			fileIdx++
		}
	}
}

// Measure runs the workload for the given virtual duration and
// returns per-class bandwidth in MB/s. Managers are drained before
// measuring starts via a short warmup.
type Measurement struct {
	PerClass map[string]float64 // MB/s
	Total    float64
	AvgLat   map[string]time.Duration
	// Telemetry from the transfer manager's per-class metrics over the
	// measured window: request counts and tail latency.
	Requests map[string]int64
	P99      map[string]time.Duration
}

// RunWorkload drives the client pools against their managers for
// warmup+duration of virtual time; metrics cover only the steady
// window.
func (r *Rig) RunWorkload(pools []struct {
	Mgr *transfer.Manager
	Opt ClientOptions
}, warmup, duration time.Duration) Measurement {
	var stop atomic.Bool
	out := Measurement{
		PerClass: map[string]float64{},
		AvgLat:   map[string]time.Duration{},
		Requests: map[string]int64{},
		P99:      map[string]time.Duration{},
	}
	r.Clock.Run(func() {
		wg := sim.NewWaitGroup(r.Clock)
		for _, p := range pools {
			r.RunClients(p.Mgr, p.Opt, &stop, wg)
		}
		r.Clock.Sleep(warmup)
		managers := map[*transfer.Manager]bool{}
		for _, p := range pools {
			if !managers[p.Mgr] {
				managers[p.Mgr] = true
				p.Mgr.Metrics().Reset(r.Clock.Now())
			}
		}
		r.Clock.Sleep(duration)
		now := r.Clock.Now()
		for _, p := range pools {
			class := p.Opt.Spec.Name
			bw := p.Mgr.Metrics().BandwidthMBps(class, now)
			stats := p.Mgr.Metrics().Class(class)
			out.PerClass[class] = bw
			out.AvgLat[class] = p.Mgr.Metrics().AvgLatency(class)
			out.Requests[class] = stats.Requests
			out.P99[class] = stats.P99
			out.Total += bw
		}
		stop.Store(true)
		wg.Wait()
	})
	return out
}

// FormatTelemetry renders a measurement's per-class transfer-manager
// metrics (the same counters /statusz exposes on a live appliance) as
// the "final metrics snapshot" nestbench prints after the figures.
func FormatTelemetry(m Measurement) string {
	var classes []string
	for c := range m.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var sb strings.Builder
	sb.WriteString("Final metrics snapshot (mixed NeST workload, per-protocol)\n")
	sb.WriteString("Counters mirror a live appliance's /statusz exposition.\n\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %12s %12s\n",
		"protocol", "requests", "MB/s", "avg lat", "p99 lat")
	var total int64
	for _, c := range classes {
		fmt.Fprintf(&sb, "%-10s %10d %10.1f %12s %12s\n",
			c, m.Requests[c], m.PerClass[c],
			m.AvgLat[c].Round(time.Microsecond),
			m.P99[c].Round(time.Microsecond))
		total += m.Requests[c]
	}
	fmt.Fprintf(&sb, "%-10s %10d %10.1f\n", "total", total, m.Total)
	return sb.String()
}
