package bench

import (
	"fmt"
	"strings"

	"nest/internal/quota"
	"nest/internal/sim"
	"nest/internal/transfer"
)

// Fig6Row is one x position of Figure 6: sequential write bandwidth at
// a given size, with and without quota enforcement.
type Fig6Row struct {
	WriteSizeMB  int
	QuotaOffMBps float64
	QuotaOnMBps  float64
}

// runFig6Point measures one sequential write of size bytes.
func runFig6Point(sizeMB int, quotasOn bool) float64 {
	prof := sim.LinuxGbE()
	qm := quota.NewManager(quotasOn)
	rig := NewRig(prof, transfer.Options{Model: transfer.Threads, Slots: 4}, qm)
	size := int64(sizeMB) * sim.MB
	var mbps float64
	rig.Clock.Run(func() {
		f, err := rig.FS.Create("/stream", "bench")
		if err != nil {
			panic(err)
		}
		defer f.Close()
		done := make(chan transfer.Result, 1)
		start := rig.Clock.Now()
		rig.Mgr.Submit(&transfer.Transfer{
			Class:     "ftp",
			Path:      "/stream",
			Size:      size,
			ChunkSize: 64 * 1024,
			Src:       &uploadReader{link: rig.Host.Link, remaining: size},
			Dst:       &fileWriter{f: f},
			OnDone: func(res transfer.Result) {
				rig.Clock.Unpark()
				done <- res
			},
		})
		rig.Clock.Park()
		res := <-done
		if res.Err != nil {
			panic(res.Err)
		}
		elapsed := (rig.Clock.Now() - start).Seconds()
		mbps = float64(size) / sim.MB / elapsed
	})
	return mbps
}

// uploadReader delivers the client's bytes as they cross the wire.
type uploadReader struct {
	link      *sim.Link
	remaining int64
}

func (r *uploadReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, fmt.Errorf("uploadReader: read past end")
	}
	n := int64(len(p))
	if n > r.remaining {
		n = r.remaining
	}
	r.link.Send(n)
	r.remaining -= n
	return int(n), nil
}

// fileWriter appends sequentially to a storage file.
type fileWriter struct {
	f interface {
		WriteAt(p []byte, off int64) (int, error)
	}
	off int64
}

func (w *fileWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Fig6Sizes is the paper's sweep: 20 MB to 200 MB.
func Fig6Sizes() []int {
	var out []int
	for s := 20; s <= 200; s += 20 {
		out = append(out, s)
	}
	return out
}

// RunFig6SinglePoint measures one x position of the sweep.
func RunFig6SinglePoint(sizeMB int) Fig6Row {
	return Fig6Row{
		WriteSizeMB:  sizeMB,
		QuotaOffMBps: runFig6Point(sizeMB, false),
		QuotaOnMBps:  runFig6Point(sizeMB, true),
	}
}

// RunFig6 regenerates Figure 6: the overhead of implementing lots with
// the quota system, under a single sequential write stream.
func RunFig6() []Fig6Row {
	var rows []Fig6Row
	for _, size := range Fig6Sizes() {
		rows = append(rows, Fig6Row{
			WriteSizeMB:  size,
			QuotaOffMBps: runFig6Point(size, false),
			QuotaOnMBps:  runFig6Point(size, true),
		})
	}
	return rows
}

// RunFig6Reads verifies the paper's companion claim: read bandwidth is
// unaffected by quotas.
func RunFig6Reads() (offMBps, onMBps float64) {
	read := func(quotasOn bool) float64 {
		prof := sim.LinuxGbE()
		qm := quota.NewManager(quotasOn)
		rig := NewRig(prof, transfer.Options{Model: transfer.Threads, Slots: 4}, qm)
		files := rig.PrepareFiles("r", 4, 50*sim.MB, false)
		var mbps float64
		rig.Clock.Run(func() {
			f, err := rig.FS.Open(files[0])
			if err != nil {
				panic(err)
			}
			defer f.Close()
			done := make(chan transfer.Result, 1)
			start := rig.Clock.Now()
			rig.Mgr.Submit(&transfer.Transfer{
				Class: "ftp", Path: files[0], Size: f.Size(), ChunkSize: 64 * 1024,
				Src: readerAtSeq{f: f}, Dst: linkWriter{link: rig.Host.Link},
				OnDone: func(res transfer.Result) {
					rig.Clock.Unpark()
					done <- res
				},
			})
			rig.Clock.Park()
			<-done
			elapsed := (rig.Clock.Now() - start).Seconds()
			mbps = 50 / elapsed
		})
		return mbps
	}
	return read(false), read(true)
}

type readerAtSeq struct {
	f interface {
		ReadAt(p []byte, off int64) (int, error)
		Size() int64
	}
	off int64
}

func (r readerAtSeq) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// FormatFig6 renders the sweep.
func FormatFig6(rows []Fig6Row, readOff, readOn float64) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Performance Overhead of Lots (quota-backed enforcement)\n")
	sb.WriteString("Single sequential write stream; bandwidth in MB/s.\n\n")
	fmt.Fprintf(&sb, "%-14s %14s %14s %8s\n", "write size(MB)", "quotas off", "quotas on", "ratio")
	for _, r := range rows {
		ratio := 1.0
		if r.QuotaOnMBps > 0 {
			ratio = r.QuotaOffMBps / r.QuotaOnMBps
		}
		fmt.Fprintf(&sb, "%-14d %14.1f %14.1f %8.2f\n",
			r.WriteSizeMB, r.QuotaOffMBps, r.QuotaOnMBps, ratio)
	}
	fmt.Fprintf(&sb, "\nread bandwidth: quotas off %.1f MB/s, quotas on %.1f MB/s (unaffected)\n",
		readOff, readOn)
	return sb.String()
}
