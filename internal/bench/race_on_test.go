//go:build race

package bench

// raceEnabled reports that the race detector is active: it perturbs
// goroutine scheduling enough to shift simultaneous-event tie-breaks
// in the virtual clock, so reproducibility assertions are skipped.
const raceEnabled = true
