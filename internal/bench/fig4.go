package bench

import (
	"fmt"
	"strings"
	"time"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/transfer"
)

// Fig4Config is one scheduling configuration of Figure 4.
type Fig4Config struct {
	Label   string
	Tickets map[string]int // nil = FIFO
	// RequestBased switches the stride ablation (charge per request
	// instead of per byte).
	RequestBased bool
	// NonWorkConserving enables the idle-wait variant (paper §7.2's
	// proposed fix).
	NonWorkConserving bool
}

// Fig4Row is one bar group: per-protocol bandwidth under a config.
type Fig4Row struct {
	Config   Fig4Config
	Result   Measurement
	Desired  map[string]float64 // ideal per-protocol share of the total
	Fairness float64            // Jain's index over delivered/desired
}

// Fig4Configs returns the paper's five configurations
// (Chirp:GridFTP:HTTP:NFS ratios).
func Fig4Configs() []Fig4Config {
	return []Fig4Config{
		{Label: "FIFO"},
		{Label: "1:1:1:1", Tickets: map[string]int{"chirp": 100, "gridftp": 100, "http": 100, "nfs": 100}},
		{Label: "1:2:1:1", Tickets: map[string]int{"chirp": 100, "gridftp": 200, "http": 100, "nfs": 100}},
		{Label: "3:1:2:1", Tickets: map[string]int{"chirp": 300, "gridftp": 100, "http": 200, "nfs": 100}},
		{Label: "1:1:1:4", Tickets: map[string]int{"chirp": 100, "gridftp": 100, "http": 100, "nfs": 400}},
	}
}

// RunFig4Config measures the mixed workload under one configuration.
func RunFig4Config(cfg Fig4Config) Fig4Row {
	prof := sim.LinuxGbE()
	opts := transfer.Options{Model: transfer.Threads, Slots: 1024}
	if cfg.Tickets != nil {
		stride := sched.NewStride(cfg.Tickets)
		stride.ChargeByBytes = !cfg.RequestBased
		if cfg.NonWorkConserving {
			stride.IdleWait = 2 * time.Millisecond
		}
		opts.Policy = stride
		// Proportional share needs the manager to control bandwidth:
		// transfers are preempted every quantum of bytes and re-picked
		// by the stride scheduler, and each admission pays the
		// user-level scheduler's bookkeeping cost — together the
		// "slight performance penalty" visible in Figure 4.
		opts.Slots = 8
		opts.Quantum = 64 * 1024
		opts.AdmitDelay = 150 * time.Microsecond
	}
	rig := NewRig(prof, opts, nil)
	var pools []managerPool
	for _, spec := range MixedSpecs() {
		files := rig.PrepareFiles("f-"+spec.Name, FilesPerProtocol, FileSizeMB*sim.MB, true)
		pools = append(pools, managerPool{Mgr: rig.Mgr, Opt: ClientOptions{
			Spec: spec, Clients: ClientsPerProtocol, Files: files,
			PacketWire: cfg.Tickets != nil,
		}})
	}
	res := rig.RunWorkload(pools, time.Second, 24*time.Second)

	row := Fig4Row{Config: cfg, Result: res, Desired: map[string]float64{}}
	if cfg.Tickets == nil {
		row.Fairness = 1 // FIFO has no target allocation
		return row
	}
	totalTickets := 0
	for _, t := range cfg.Tickets {
		totalTickets += t
	}
	var ratios []float64
	for class, t := range cfg.Tickets {
		desired := res.Total * float64(t) / float64(totalTickets)
		row.Desired[class] = desired
		if desired > 0 {
			ratios = append(ratios, res.PerClass[class]/desired)
		}
	}
	row.Fairness = sched.Fairness(ratios)
	return row
}

// RunFig4 regenerates Figure 4.
func RunFig4() []Fig4Row {
	var rows []Fig4Row
	for _, cfg := range Fig4Configs() {
		rows = append(rows, RunFig4Config(cfg))
	}
	return rows
}

// FormatFig4 renders the rows.
func FormatFig4(rows []Fig4Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: Proportional Protocol Scheduling (Chirp:GridFTP:HTTP:NFS)\n")
	sb.WriteString("Mixed workload of Figure 3; bandwidth in MB/s; Jain's fairness over delivered/desired.\n\n")
	classes := []string{"chirp", "gridftp", "http", "nfs"}
	fmt.Fprintf(&sb, "%-9s %7s", "config", "total")
	for _, c := range classes {
		fmt.Fprintf(&sb, " %9s", c)
	}
	fmt.Fprintf(&sb, " %9s\n", "fairness")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %7.1f", r.Config.Label, r.Result.Total)
		for _, c := range classes {
			fmt.Fprintf(&sb, " %9.1f", r.Result.PerClass[c])
		}
		if r.Config.Tickets == nil {
			fmt.Fprintf(&sb, " %9s\n", "-")
		} else {
			fmt.Fprintf(&sb, " %9.3f\n", r.Fairness)
		}
		if len(r.Desired) > 0 {
			fmt.Fprintf(&sb, "%-9s %7s", "(desired)", "")
			for _, c := range classes {
				fmt.Fprintf(&sb, " %9.1f", r.Desired[c])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
