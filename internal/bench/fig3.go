package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/transfer"
)

// Fig3Row is one bar pair of Figure 3: a workload served by NeST and
// by the equivalent native server(s).
type Fig3Row struct {
	Workload string      // "chirp", ..., or "mixed"
	NeST     Measurement // single shared-server appliance
	JBOS     Measurement // independent native servers
	Baseline string      // the native comparator's name
}

// baselineName maps a protocol to its paper-era native server.
func baselineName(proto string) string {
	switch proto {
	case "http":
		return "Apache"
	case "ftp":
		return "wu-ftpd"
	case "nfs":
		return "Linux nfsd"
	case "gridftp":
		return "Globus ftpd"
	case "chirp":
		return "Chirp server"
	}
	return "JBOS"
}

// managerPool pairs client options with the manager serving them.
type managerPool = struct {
	Mgr *transfer.Manager
	Opt ClientOptions
}

// runProtocolWorkload measures one workload under either the NeST
// configuration (one shared transfer manager) or the JBOS baseline
// (one independent, unscheduled server per protocol).
func runProtocolWorkload(specs []ProtoSpec, jbos bool) Measurement {
	prof := sim.LinuxGbE()
	var rig *Rig
	var pools []managerPool
	if jbos {
		rig = NewRig(prof, transfer.Options{Model: transfer.Threads, Slots: 1024}, nil)
		for _, spec := range specs {
			// Each native server is its own manager: nothing shared
			// but the machine. Admission is effectively unbounded.
			mgrDone := make(chan *transfer.Manager, 1)
			rig.Clock.Run(func() {
				mgrDone <- transfer.NewManager(transfer.Options{
					Clock: rig.Clock, Profile: prof,
					Model: transfer.Threads, Slots: 1024,
				})
			})
			mgr := <-mgrDone
			files := rig.PrepareFiles("f-"+spec.Name, FilesPerProtocol, FileSizeMB*sim.MB, true)
			pools = append(pools, managerPool{Mgr: mgr, Opt: ClientOptions{
				Spec: spec, Clients: ClientsPerProtocol, Files: files, JBOS: true,
			}})
		}
	} else {
		rig = NewRig(prof, transfer.Options{
			Model:  transfer.Threads,
			Slots:  1024, // FIFO default: arrival-order chunk service
			Policy: sched.NewFIFO(),
		}, nil)
		for _, spec := range specs {
			files := rig.PrepareFiles("f-"+spec.Name, FilesPerProtocol, FileSizeMB*sim.MB, true)
			pools = append(pools, managerPool{Mgr: rig.Mgr, Opt: ClientOptions{
				Spec: spec, Clients: ClientsPerProtocol, Files: files,
			}})
		}
	}
	return rig.RunWorkload(pools, time.Second, 8*time.Second)
}

// RunSingleProtocol measures one protocol's dedicated workload under
// NeST (jbos=false) or the native single-protocol server (jbos=true).
func RunSingleProtocol(spec ProtoSpec, jbos bool) Measurement {
	return runProtocolWorkload([]ProtoSpec{spec}, jbos)
}

// RunMixed measures the four-protocol mixed workload.
func RunMixed(jbos bool) Measurement {
	return runProtocolWorkload(MixedSpecs(), jbos)
}

// RunFig3 regenerates Figure 3: per-protocol bandwidth of NeST versus
// native servers for each single-protocol workload, then the mixed
// four-protocol workload.
func RunFig3() []Fig3Row {
	var rows []Fig3Row
	for _, spec := range AllSpecs() {
		rows = append(rows, Fig3Row{
			Workload: spec.Name,
			Baseline: baselineName(spec.Name),
			NeST:     runProtocolWorkload([]ProtoSpec{spec}, false),
			JBOS:     runProtocolWorkload([]ProtoSpec{spec}, true),
		})
	}
	rows = append(rows, Fig3Row{
		Workload: "mixed",
		Baseline: "JBOS",
		NeST:     runProtocolWorkload(MixedSpecs(), false),
		JBOS:     runProtocolWorkload(MixedSpecs(), true),
	})
	return rows
}

// FormatFig3 renders the rows as the figure's data table.
func FormatFig3(rows []Fig3Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: Multiple Protocols — server bandwidth (MB/s)\n")
	sb.WriteString("Workload of 4 clients per protocol requesting 10 MB in-cache files.\n\n")
	fmt.Fprintf(&sb, "%-10s %-14s %10s %10s\n", "workload", "baseline", "NeST", "JBOS")
	for _, r := range rows {
		if r.Workload == "mixed" {
			fmt.Fprintf(&sb, "%-10s %-14s %10.1f %10.1f\n",
				r.Workload, r.Baseline, r.NeST.Total, r.JBOS.Total)
			var classes []string
			for c := range r.NeST.PerClass {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				fmt.Fprintf(&sb, "  %-8s %-14s %10.1f %10.1f\n",
					c, "", r.NeST.PerClass[c], r.JBOS.PerClass[c])
			}
			continue
		}
		fmt.Fprintf(&sb, "%-10s %-14s %10.1f %10.1f\n",
			r.Workload, r.Baseline, r.NeST.Total, r.JBOS.Total)
	}
	return sb.String()
}
