package bench

import (
	"fmt"
	"strings"
	"time"

	"nest/internal/sim"
	"nest/internal/transfer"
)

// Fig5Row is one bar of Figure 5: a concurrency model's performance on
// one platform/workload.
type Fig5Row struct {
	Platform string // "solaris" or "linux"
	Model    transfer.ModelKind
	// LatencyMs is the average per-request latency (Solaris, 1 KB
	// in-cache requests).
	LatencyMs float64
	// BandwidthMBps is the delivered bandwidth (Linux, 10 MB files).
	BandwidthMBps float64
}

// fig5Models are the models compared; the process model is disabled in
// the figure "for the sake of clarity", as in the paper.
func fig5Models() []transfer.ModelKind {
	return []transfer.ModelKind{transfer.Events, transfer.Threads, transfer.Adaptive}
}

// runFig5Solaris measures average request latency for 1 KB in-cache
// files on the Solaris profile.
func runFig5Solaris(model transfer.ModelKind, probePeriod time.Duration) float64 {
	prof := sim.Solaris100()
	opts := transfer.Options{Model: model, Slots: 64}
	if model == transfer.Adaptive {
		opts.AdaptiveOptions = adaptiveOpts(probePeriod)
	}
	rig := NewRig(prof, opts, nil)
	spec := SpecChirp
	spec.PerRequestCPU = prof.RequestCPU
	files := rig.PrepareFiles("small", 32, 1024, true)
	res := rig.RunWorkload([]managerPool{{Mgr: rig.Mgr, Opt: ClientOptions{
		Spec: spec, Clients: ClientsPerProtocol, Files: files,
	}}}, time.Second, 10*time.Second)
	return float64(res.AvgLat[spec.Name]) / float64(time.Millisecond)
}

// runFig5Linux measures delivered bandwidth for 10 MB mostly-cold
// files on the Linux profile: the event loop stalls on every disk
// fetch while threads overlap disk and network.
func runFig5Linux(model transfer.ModelKind, probePeriod time.Duration) float64 {
	prof := sim.LinuxGbE()
	opts := transfer.Options{Model: model, Slots: 64}
	if model == transfer.Adaptive {
		opts.AdaptiveOptions = adaptiveOpts(probePeriod)
	}
	rig := NewRig(prof, opts, nil)
	spec := SpecChirp
	spec.ChunkSize = 64 * 1024
	// A file set much larger than the 96 MB cache: reads miss.
	files := rig.PrepareFiles("big", 40, FileSizeMB*sim.MB, false)
	res := rig.RunWorkload([]managerPool{{Mgr: rig.Mgr, Opt: ClientOptions{
		Spec: spec, Clients: ClientsPerProtocol, Files: files,
	}}}, 2*time.Second, 12*time.Second)
	return res.Total
}

// DefaultProbePeriod is the adaptive model's re-probe interval in the
// figure runs.
const DefaultProbePeriod = time.Second

// adaptiveOpts configures the adaptive model as the figure runs it:
// threads versus events (the process model is disabled for clarity, as
// in the paper), with periodic probing plus residual exploration — the
// visible cost of adaptation.
func adaptiveOpts(probePeriod time.Duration) transfer.AdaptiveOptions {
	return transfer.AdaptiveOptions{
		Models:      []transfer.ModelKind{transfer.Events, transfer.Threads},
		ProbePeriod: probePeriod,
		ProbeLen:    4,
		Epsilon:     0.12,
	}
}

// RunFig5SolarisModel measures one model's average small-request
// latency (ms) on the Solaris profile.
func RunFig5SolarisModel(model transfer.ModelKind) float64 {
	return runFig5Solaris(model, DefaultProbePeriod)
}

// RunFig5LinuxModel measures one model's large-file bandwidth (MB/s)
// on the Linux profile.
func RunFig5LinuxModel(model transfer.ModelKind) float64 {
	return runFig5Linux(model, DefaultProbePeriod)
}

// RunFig5 regenerates both halves of Figure 5.
func RunFig5() []Fig5Row {
	var rows []Fig5Row
	for _, m := range fig5Models() {
		rows = append(rows, Fig5Row{
			Platform:  "solaris",
			Model:     m,
			LatencyMs: runFig5Solaris(m, DefaultProbePeriod),
		})
	}
	for _, m := range fig5Models() {
		rows = append(rows, Fig5Row{
			Platform:      "linux",
			Model:         m,
			BandwidthMBps: runFig5Linux(m, DefaultProbePeriod),
		})
	}
	return rows
}

// FormatFig5 renders the rows.
func FormatFig5(rows []Fig5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Adaptive Concurrency\n")
	sb.WriteString("Left: Solaris, 1 KB in-cache requests (avg ms/request).\n")
	sb.WriteString("Right: Linux, 10 MB cold files (server bandwidth MB/s).\n\n")
	fmt.Fprintf(&sb, "%-9s %-9s %14s %16s\n", "platform", "model", "latency(ms)", "bandwidth(MB/s)")
	for _, r := range rows {
		if r.Platform == "solaris" {
			fmt.Fprintf(&sb, "%-9s %-9s %14.2f %16s\n", r.Platform, r.Model, r.LatencyMs, "-")
		} else {
			fmt.Fprintf(&sb, "%-9s %-9s %14s %16.1f\n", r.Platform, r.Model, "-", r.BandwidthMBps)
		}
	}
	return sb.String()
}
