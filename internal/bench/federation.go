package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/classad"
	"nest/internal/discovery"
	"nest/internal/obs"
	"nest/internal/replica"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// The federation scenario: a fleet of appliances all holding the same
// file set, advertising health into one collector, serving a
// Zipf-skewed GET workload whose clients resolve every logical name
// through the replica catalog and rank the holders by advertised
// bandwidth, tail latency and queue depth (random tie-break). The
// question the experiment answers is whether health-ranked selection
// turns N replicas into ~N appliances' worth of aggregate throughput,
// and whether it routes traffic away from a degraded replica — the
// manageability claim behind the paper's Grid-storage positioning.
const (
	fedFileSize  = 4 * sim.MB
	fedFileCount = 24
	fedChunk     = 32 * 1024
	// fedAdPeriod is the advertisement refresh: the staleness of the
	// health signal selection works from.
	fedAdPeriod = 100 * time.Millisecond
	// fedZipfS is the GET popularity skew (s > 1: hot files dominate).
	fedZipfS = 1.2
)

// FederationOptions parameterizes one federation run.
type FederationOptions struct {
	// Replicas is the fleet size; every appliance holds every file.
	Replicas int
	// Clients is the closed-loop client count (default 16) — held
	// constant across fleet sizes so offered concurrency is fixed and
	// only capacity grows.
	Clients int
	// Degraded, when >= 0, throttles that node's link to DegradedMBps
	// (the traffic-shift experiment).
	Degraded     int
	DegradedMBps float64
	// Warmup and Duration bound the virtual measurement window.
	Warmup   time.Duration
	Duration time.Duration
	// Tracing turns on distributed span recording: each client GET
	// mints a trace, the serving node's request and transfer stages
	// record into that node's own span ring, and the result carries a
	// sample cross-appliance tree assembled at merge time.
	Tracing bool
}

// FederationResult is one fleet size's measurement.
type FederationResult struct {
	Replicas      int
	AggregateMBps float64
	PerNode       map[string]float64 // MB/s served by each appliance
	Gets          int64
	// SampleTrace is one GET's rendered cross-appliance span tree
	// (Tracing runs only); SpanDrops counts spans lost to ring
	// contention across the fleet.
	SampleTrace string
	SpanDrops   int64
}

// fedNode is one simulated appliance: its own host (link, CPU, disk),
// filesystem and transfer manager on the shared virtual clock.
type fedNode struct {
	name   string
	host   *sim.Host
	fs     *storage.SimFS
	mgr    *transfer.Manager
	tracer *obs.Tracer  // per-appliance span ring (Tracing runs only)
	bytes  atomic.Int64 // payload bytes served

	mu       sync.Mutex
	inflight map[int64]time.Duration // GET id -> virtual start time
	nextID   int64
}

func (n *fedNode) begin(now time.Duration) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	n.inflight[n.nextID] = now
	return n.nextID
}

func (n *fedNode) end(id int64) {
	n.mu.Lock()
	delete(n.inflight, id)
	n.mu.Unlock()
}

// health reports the in-flight GET count and the age of the oldest
// outstanding GET. The completed-transfer P99 is blind on a node whose
// link is so slow nothing ever finishes — the age of its stuck requests
// is the honest floor under the tail latency it advertises.
func (n *fedNode) health(now time.Duration) (depth int, oldest time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.inflight {
		if age := now - s; age > oldest {
			oldest = age
		}
	}
	return len(n.inflight), oldest
}

// RunFederation measures aggregate GET throughput of a fleet behind
// catalog-driven, health-ranked replica selection.
func RunFederation(o FederationOptions) FederationResult {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Warmup <= 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Duration <= 0 {
		o.Duration = 8 * time.Second
	}

	clock := sim.NewVirtualClock()
	collector := discovery.NewCollector(clock, time.Minute)
	nodes := make([]*fedNode, o.Replicas)
	files := make([]string, fedFileCount)
	for j := range files {
		files[j] = fmt.Sprintf("/fed%03d", j)
	}

	clock.Run(func() {
		for i := range nodes {
			prof := sim.LinuxGbE()
			if i == o.Degraded && o.DegradedMBps > 0 {
				prof.LinkMBps = o.DegradedMBps
			}
			host := sim.NewHost(clock, prof)
			fs := storage.NewSimFS(host, 1<<40, nil)
			mgr := transfer.NewManager(transfer.Options{
				Clock: clock, Profile: prof, Model: transfer.Threads, Slots: 16,
			})
			n := &fedNode{
				name: fmt.Sprintf("nest-%d", i), host: host, fs: fs, mgr: mgr,
				inflight: make(map[int64]time.Duration),
			}
			if o.Tracing {
				n.tracer = obs.NewTracer(n.name, 4096)
				mgr.SetTracer(n.tracer)
			}
			for _, p := range files {
				f, err := fs.Create(p, "bench")
				if err != nil {
					panic(err)
				}
				if err := f.Truncate(fedFileSize); err != nil {
					panic(err)
				}
				f.Close()
			}
			// The experiment measures network scaling, not disk: serve
			// from cache.
			fs.Cache().Clear()
			for _, p := range files {
				fs.Warm(p)
			}
			nodes[i] = n
		}
	})

	byName := make(map[string]*fedNode, len(nodes))
	for _, n := range nodes {
		byName[n.name] = n
	}

	var stop atomic.Bool
	var gets atomic.Int64
	res := FederationResult{Replicas: o.Replicas, PerNode: map[string]float64{}}
	var clientTracer *obs.Tracer
	if o.Tracing {
		clientTracer = obs.NewTracer("client", 4096)
	}

	clock.Run(func() {
		wg := sim.NewWaitGroup(clock)

		// Per-appliance advertiser: every fedAdPeriod, publish a fresh
		// ad carrying the node's measured bandwidth over the window,
		// its live queue depth and tail latency, plus its replica list
		// — the same consolidation a live dispatcher performs.
		for _, n := range nodes {
			n := n
			wg.Add(1)
			clock.Go(func() {
				defer wg.Done()
				var prev int64
				var ewma float64
				for {
					cur := n.bytes.Load()
					// A single 100ms window is bursty (whole files
					// complete at once); smooth it so the ranking sees
					// sustained rate, not sampling noise.
					win := float64(cur-prev) / fedAdPeriod.Seconds() / float64(sim.MB)
					ewma = 0.6*ewma + 0.4*win
					ad := classad.NewAd()
					ad.SetString("Name", n.name)
					ad.SetReal("RecentBandwidthMBps", ewma)
					// Queue depth is GETs in flight, not just transfers
					// waiting for a slot: in-service work on a slow link
					// is exactly the congestion selection must see.
					depth, oldest := n.health(clock.Now())
					p99 := float64(n.mgr.Metrics().Class("fed").P99) / 1e6
					if age := float64(oldest) / float64(time.Millisecond); age > p99 {
						p99 = age
					}
					ad.SetInt("QueueDepth", int64(depth))
					ad.SetReal("P99LatencyMs", p99)
					discovery.SetReplicas(ad, files)
					collector.Advertise(ad)
					prev = cur
					if stop.Load() {
						return
					}
					clock.Sleep(fedAdPeriod)
				}
			})
		}

		// Closed-loop clients: draw a file from the Zipf popularity
		// curve, resolve it through the catalog, and fetch from a
		// holder drawn score-weighted from the ranking.
		for c := 0; c < o.Clients; c++ {
			c := c
			wg.Add(1)
			clock.Go(func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + c)))
				zipf := rand.NewZipf(rng, fedZipfS, 1, uint64(len(files)-1))
				// Stagger arrival: a simultaneous cold start would place
				// every client on score ties before the first load-bearing
				// advertisement exists.
				clock.Sleep(time.Duration(rng.Intn(400)) * time.Millisecond)
				for !stop.Load() {
					path := files[zipf.Uint64()]
					ad := replica.Pick(collector.ReplicaAds(path), rng)
					if ad == nil {
						clock.Sleep(10 * time.Millisecond)
						continue
					}
					fedGet(clock, byName[replica.Name(ad)], path, clientTracer)
					gets.Add(1)
				}
			})
		}

		clock.Sleep(o.Warmup)
		start := make([]int64, len(nodes))
		for i, n := range nodes {
			start[i] = n.bytes.Load()
		}
		startGets := gets.Load()
		clock.Sleep(o.Duration)
		for i, n := range nodes {
			mbps := float64(n.bytes.Load()-start[i]) / o.Duration.Seconds() / float64(sim.MB)
			res.PerNode[n.name] = mbps
			res.AggregateMBps += mbps
		}
		res.Gets = gets.Load() - startGets
		stop.Store(true)
		wg.Wait()
	})
	if o.Tracing {
		res.SpanDrops = clientTracer.Drops()
		for _, n := range nodes {
			res.SpanDrops += n.tracer.Drops()
		}
		res.SampleTrace = sampleFedTrace(clientTracer, nodes)
	}
	return res
}

// sampleFedTrace picks the newest completed client GET and merges its
// spans across the client's and every appliance's rings — the same
// merge nestctl trace performs over /traces/<id>.
func sampleFedTrace(client *obs.Tracer, nodes []*fedNode) string {
	snap := client.Snapshot()
	for i := len(snap) - 1; i >= 0; i-- {
		if snap[i].Stage != "fed.get" || snap[i].Code != 0 {
			continue
		}
		trace := snap[i].Trace
		spans := client.Spans(trace)
		for _, n := range nodes {
			spans = append(spans, n.tracer.Spans(trace)...)
		}
		if len(spans) < 2 {
			continue // server-side spans already overwritten; try older
		}
		return fmt.Sprintf("trace %x (%d spans)\n%s", trace, len(spans), obs.RenderTrace(spans))
	}
	return "no complete sample trace retained\n"
}

// fedGet serves one whole-file GET from node n: request RTT, server
// per-request CPU, then the transfer pumped through n's scheduler onto
// n's link. With ct non-nil the GET is traced end to end: a client-side
// fed.get root, the serving appliance's request span, and the transfer
// stages the node's manager records under it.
func fedGet(clock *sim.VirtualClock, n *fedNode, path string, ct *obs.Tracer) {
	id := n.begin(clock.Now())
	defer n.end(id)
	var trace, root, reqID uint64
	var begin time.Duration
	if ct != nil {
		trace, root = ct.NewTraceID(), ct.NewSpanID()
		begin = clock.Now()
	}
	clock.Sleep(n.host.Link.RTT() / 2)
	n.host.CPU.Work(SpecChirp.PerRequestCPU)
	var reqBegin time.Duration
	if ct != nil {
		reqID = n.tracer.NewSpanID()
		reqBegin = clock.Now()
	}
	f, err := n.fs.Open(path)
	if err != nil {
		panic(err)
	}
	size := f.Size()
	done := make(chan transfer.Result, 1)
	n.mgr.Submit(&transfer.Transfer{
		Class:     "fed",
		Path:      path,
		Size:      size,
		ChunkSize: fedChunk,
		TraceID:   trace,
		Span:      reqID,
		Src:       io.NewSectionReader(f, 0, size),
		Dst:       linkWriter{link: n.host.Link, gran: fedChunk},
		OnDone: func(res transfer.Result) {
			clock.Unpark()
			done <- res
		},
	})
	clock.Park()
	<-done
	f.Close()
	if ct != nil {
		n.tracer.Record(&obs.Span{
			Trace: trace, ID: reqID, Parent: root,
			Stage: "request", Proto: "chirp", Op: "get", Path: path,
			Bytes: size, Start: reqBegin, Dur: clock.Now() - reqBegin,
		})
	}
	clock.Sleep(n.host.Link.RTT() / 2)
	n.bytes.Add(size)
	if ct != nil {
		ct.Record(&obs.Span{
			Trace: trace, ID: root,
			Stage: "fed.get", Proto: "chirp", Op: "get", Path: path,
			Bytes: size, Start: begin, Dur: clock.Now() - begin,
			Notes: [2]obs.SpanNote{{Key: "holder", Str: n.name}},
		})
	}
}

// TraceOverhead runs the same 2-replica federation workload with
// tracing off and on: the acceptance check that span recording does
// not tax the data path, plus one GET's cross-appliance tree as the
// demo artifact.
func TraceOverhead() (off, on FederationResult) {
	base := FederationOptions{Replicas: 2, Degraded: -1}
	off = RunFederation(base)
	base.Tracing = true
	on = RunFederation(base)
	return off, on
}

// FormatTraceOverhead renders the tracing on/off comparison and the
// sample federated span tree.
func FormatTraceOverhead(off, on FederationResult) string {
	var sb strings.Builder
	sb.WriteString("Distributed tracing: overhead and a federated span tree\n")
	sb.WriteString("Same 2-replica Zipf GET workload, span recording off vs on.\n\n")
	fmt.Fprintf(&sb, "%-12s %14s %8s %12s\n", "tracing", "aggregate MB/s", "GETs", "span drops")
	fmt.Fprintf(&sb, "%-12s %14.1f %8d %12s\n", "off", off.AggregateMBps, off.Gets, "-")
	fmt.Fprintf(&sb, "%-12s %14.1f %8d %12d\n", "on", on.AggregateMBps, on.Gets, on.SpanDrops)
	overhead := 0.0
	if off.AggregateMBps > 0 {
		overhead = (off.AggregateMBps - on.AggregateMBps) / off.AggregateMBps * 100
	}
	fmt.Fprintf(&sb, "\nthroughput overhead: %.2f%%\n", overhead)
	sb.WriteString("\nsample trace (one Zipf GET, merged across client + appliances)\n")
	sb.WriteString(on.SampleTrace)
	return sb.String()
}

// FederationSweep runs the standard 1/2/4-replica scaling experiment.
func FederationSweep() []FederationResult {
	var rows []FederationResult
	for _, r := range []int{1, 2, 4} {
		rows = append(rows, RunFederation(FederationOptions{Replicas: r, Degraded: -1}))
	}
	return rows
}

// FormatFederation renders the sweep as the nestbench table.
func FormatFederation(rows []FederationResult) string {
	var sb strings.Builder
	sb.WriteString("Federation: aggregate GET throughput vs replica count\n")
	sb.WriteString("Zipf-skewed clients resolving names through the replica catalog,\n")
	sb.WriteString("ranking holders by advertised bandwidth/latency/queue depth.\n\n")
	fmt.Fprintf(&sb, "%-10s %14s %10s %8s  %s\n",
		"replicas", "aggregate MB/s", "speedup", "GETs", "per-appliance MB/s")
	base := 0.0
	if len(rows) > 0 {
		base = rows[0].AggregateMBps
	}
	for _, r := range rows {
		speedup := 0.0
		if base > 0 {
			speedup = r.AggregateMBps / base
		}
		names := make([]string, 0, len(r.PerNode))
		for n := range r.PerNode {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%.1f", r.PerNode[n])
		}
		fmt.Fprintf(&sb, "%-10d %14.1f %9.2fx %8d  %s\n",
			r.Replicas, r.AggregateMBps, speedup, r.Gets, strings.Join(parts, " "))
	}
	return sb.String()
}
