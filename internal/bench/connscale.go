package bench

// Connection-scale harness for the connmgr front end (paper §3: one
// appliance serving a whole site's clients): how many idle connections
// one process holds parked with O(workers) goroutines, and what the
// overload shedder does to admitted latency and goodput past
// saturation. docs/c100k_bench.md records the measured numbers.

import (
	"container/heap"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"nest/internal/connmgr"
)

// idleConn is an in-memory connection carrying the PollableConn
// readiness capability, so 100k of them park through the probe poller
// without descriptors.
type idleConn struct {
	pending atomic.Bool
	hup     atomic.Bool
}

func (c *idleConn) Read(p []byte) (int, error)       { return 0, nil }
func (c *idleConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *idleConn) Close() error                     { return nil }
func (c *idleConn) LocalAddr() net.Addr              { return nil }
func (c *idleConn) RemoteAddr() net.Addr             { return nil }
func (c *idleConn) SetDeadline(time.Time) error      { return nil }
func (c *idleConn) SetReadDeadline(time.Time) error  { return nil }
func (c *idleConn) SetWriteDeadline(time.Time) error { return nil }
func (c *idleConn) ReadReady() (ready, hungup bool)  { return c.pending.Load(), c.hup.Load() }

// ParkScaleResult is the footprint of one manager holding Conns parked
// connections.
type ParkScaleResult struct {
	Conns        int
	Goroutines   int     // goroutines while all Conns are parked
	BytesPerConn float64 // heap growth per parked connection
	WakeSample   int
	WakeLatency  time.Duration // wall time to resume the whole sample
}

// RunParkScale parks n idle connections in one manager, measures the
// steady-state footprint, then wakes a sample through the poller to
// show parked connections still respond.
func RunParkScale(n, sample int) ParkScaleResult {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// A long poll interval keeps the background sweeper out of the
	// measurement; wakes are driven by explicit Poll calls.
	m := connmgr.New(connmgr.Config{PollInterval: time.Second})
	defer m.Close()
	conns := make([]*idleConn, n)
	var woke atomic.Int64
	for i := range conns {
		conns[i] = &idleConn{}
		if !m.Park(conns[i], "chirp", func(connmgr.WakeReason) { woke.Add(1) }) {
			panic("connscale: park refused for a pollable conn")
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res := ParkScaleResult{
		Conns:      n,
		Goroutines: runtime.NumGoroutine(),
		WakeSample: sample,
	}
	if grown := int64(after.HeapAlloc) - int64(before.HeapAlloc); grown > 0 {
		res.BytesPerConn = float64(grown) / float64(n)
	}

	start := time.Now()
	for i := 0; i < sample; i++ {
		conns[i].pending.Store(true)
	}
	m.Poll()
	for woke.Load() < int64(sample) {
		time.Sleep(time.Millisecond)
	}
	res.WakeLatency = time.Since(start)
	return res
}

// Saturation model: a deterministic G/D/K queue driven through the
// real connmgr shedder. Arrivals come at `load` times service
// capacity; connWorkers workers each take connService per request.
// With shedding off the backlog grows without bound past load 1; with
// the in-flight threshold on, refused arrivals fail fast and the
// admitted p99 stays bounded near threshold/workers service times.
const (
	connWorkers = 4
	connService = time.Millisecond
	// connShedInFlight caps admitted-but-unfinished requests at the
	// worker count: an admitted request waits at most one service time.
	connShedInFlight = connWorkers
	connSatRequests  = 20000
)

// ConnSatRow is one saturation sweep point.
type ConnSatRow struct {
	Load    float64 // offered load as a multiple of service capacity
	Shed    bool
	Offered int
	Served  int
	Refused int
	Goodput float64       // served requests per second of simulated time
	P99     time.Duration // admitted-request latency p99
}

type durHeap []time.Duration

func (h durHeap) Len() int            { return len(h) }
func (h durHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h durHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *durHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunConnSaturation simulates connSatRequests arrivals at the given
// load multiple, admitting each through a real connmgr.Manager whose
// in-flight signal reads the simulated backlog.
func RunConnSaturation(load float64, shed bool) ConnSatRow {
	var inFlight atomic.Int64
	cfg := connmgr.Config{}
	if shed {
		cfg.ShedInFlight = connShedInFlight
		cfg.Signals = connmgr.Signals{InFlight: inFlight.Load}
		// Re-sample the signal on (almost) every admission: the cache
		// is the production safety valve, not part of this model.
		cfg.SignalPeriod = time.Nanosecond
	}
	m := connmgr.New(cfg)
	defer m.Close()

	interval := time.Duration(float64(connService) / (load * connWorkers))
	free := make([]time.Duration, connWorkers) // per-worker next-free time
	finish := &durHeap{}                       // admitted-but-unfinished completion times
	lat := make([]time.Duration, 0, connSatRequests)
	row := ConnSatRow{Load: load, Shed: shed, Offered: connSatRequests}
	var now time.Duration
	for i := 0; i < connSatRequests; i++ {
		now = time.Duration(i) * interval
		for finish.Len() > 0 && (*finish)[0] <= now {
			heap.Pop(finish)
			inFlight.Add(-1)
		}
		if m.Admit("http") != connmgr.Admitted {
			row.Refused++
			continue
		}
		w := 0
		for j := 1; j < connWorkers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		start := now
		if free[w] > start {
			start = free[w]
		}
		end := start + connService
		free[w] = end
		heap.Push(finish, end)
		inFlight.Add(1)
		lat = append(lat, end-now)
		row.Served++
		m.Release("http", "")
	}
	total := now
	for _, f := range free {
		if f > total {
			total = f
		}
	}
	if total > 0 {
		row.Goodput = float64(row.Served) / total.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		row.P99 = lat[(len(lat)-1)*99/100]
	}
	return row
}

// ConnSaturationSweep runs the documented sweep: offered load from
// below capacity to 2x saturation, shedding off and on.
func ConnSaturationSweep() []ConnSatRow {
	var rows []ConnSatRow
	for _, load := range []float64{0.8, 1.0, 1.5, 2.0} {
		for _, shed := range []bool{false, true} {
			rows = append(rows, RunConnSaturation(load, shed))
		}
	}
	return rows
}
