package bench

import (
	"testing"
	"time"
)

// TestConnScale100kSim parks 100k pollable connections in one manager:
// goroutines must stay O(workers) — the whole point of parking — and
// per-connection bookkeeping must stay small (the connection's cost is
// its descriptor, not a stack).
func TestConnScale100kSim(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	res := RunParkScale(n, 1000)
	if res.Goroutines >= n/100 {
		t.Errorf("%d goroutines for %d parked conns; parking is not releasing stacks", res.Goroutines, n)
	}
	if res.BytesPerConn > 4096 {
		t.Errorf("%.0f bytes/conn of heap; bookkeeping no longer O(fds)", res.BytesPerConn)
	}
	if res.WakeLatency > 5*time.Second {
		t.Errorf("waking %d of %d parked conns took %v", res.WakeSample, n, res.WakeLatency)
	}
	t.Logf("%d conns parked: %d goroutines, %.0f B/conn, %d wakes in %v",
		res.Conns, res.Goroutines, res.BytesPerConn, res.WakeSample, res.WakeLatency)
}

// TestSaturationShedBoundsLatency pins the overload contract from
// DESIGN.md §16: at 2x saturation the shedder keeps admitted p99
// within 3x the unsaturated p99 and goodput at >=80% of peak, while
// shedding off lets latency run away unbounded.
func TestSaturationShedBoundsLatency(t *testing.T) {
	base := RunConnSaturation(0.8, true)
	peak := RunConnSaturation(1.0, true)
	hot := RunConnSaturation(2.0, true)
	off := RunConnSaturation(2.0, false)

	if base.Refused != 0 {
		t.Errorf("shedder refused %d below saturation", base.Refused)
	}
	if hot.P99 > 3*base.P99 {
		t.Errorf("admitted p99 at 2x load = %v, want <= 3x unsaturated %v", hot.P99, base.P99)
	}
	if hot.Goodput < 0.8*peak.Goodput {
		t.Errorf("goodput at 2x load = %.0f/s, want >= 80%% of peak %.0f/s", hot.Goodput, peak.Goodput)
	}
	if hot.Refused == 0 {
		t.Error("no arrivals shed at 2x saturation")
	}
	// The contrast that justifies the shedder: without it the same
	// offered load queues every request and p99 explodes.
	if off.P99 < 10*hot.P99 {
		t.Errorf("shed-off p99 %v vs shed-on %v: model shows no congestion to shed", off.P99, hot.P99)
	}
	t.Logf("p99: unsaturated %v, 2x shed-on %v, 2x shed-off %v; goodput %.0f/s of peak %.0f/s (refused %d/%d)",
		base.P99, hot.P99, off.P99, hot.Goodput, peak.Goodput, hot.Refused, hot.Offered)
}

// BenchmarkConnScale100kSim is the c100k figure: park 100k connections,
// wake a thousand, report footprint. Run via make bench-c100k.
func BenchmarkConnScale100kSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunParkScale(100_000, 1000)
		b.ReportMetric(res.BytesPerConn, "B/conn")
		b.ReportMetric(float64(res.Goroutines), "goroutines")
		b.ReportMetric(res.WakeLatency.Seconds()*1000, "wake-ms")
	}
}
