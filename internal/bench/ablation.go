package bench

import (
	"fmt"
	"strings"
	"time"

	"nest/internal/lots"
	"nest/internal/quota"
	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/transfer"
)

// Ablations probe the design choices DESIGN.md calls out: byte-based
// stride accounting, the non-work-conserving stride variant, the
// adaptation probe period, lot enforcement modes, and cache-aware
// scheduling.

// AblationStrideCharging compares byte-based strides (the paper's
// design) with request-based charging under equal tickets: request
// charging starves the block-based protocol.
func AblationStrideCharging() (byteBased, requestBased Fig4Row) {
	equal := map[string]int{"chirp": 100, "gridftp": 100, "http": 100, "nfs": 100}
	byteBased = RunFig4Config(Fig4Config{Label: "bytes", Tickets: equal})
	requestBased = RunFig4Config(Fig4Config{Label: "requests", Tickets: equal, RequestBased: true})
	return byteBased, requestBased
}

// AblationNonWorkConserving re-runs the 1:1:1:4 configuration (where
// the work-conserving stride fails to deliver NFS its share) with the
// idle-wait variant the paper proposes in §7.2: better allocation
// control at some cost in total bandwidth.
func AblationNonWorkConserving() (workConserving, nonWorkConserving Fig4Row) {
	tickets := map[string]int{"chirp": 100, "gridftp": 100, "http": 100, "nfs": 400}
	workConserving = RunFig4Config(Fig4Config{Label: "work-cons", Tickets: tickets})
	nonWorkConserving = RunFig4Config(Fig4Config{
		Label: "idle-wait", Tickets: tickets, NonWorkConserving: true,
	})
	return workConserving, nonWorkConserving
}

// ProbePoint is one probe-period setting's cost on the Solaris small-
// request workload.
type ProbePoint struct {
	Period    time.Duration
	LatencyMs float64
}

// AblationProbePeriod sweeps the adaptive model's re-probe period:
// frequent probing re-tries the slow model often and raises average
// latency (the visible adaptation cost of Figure 5).
func AblationProbePeriod() []ProbePoint {
	var out []ProbePoint
	for _, period := range []time.Duration{
		100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, 8 * time.Second,
	} {
		out = append(out, ProbePoint{
			Period:    period,
			LatencyMs: runFig5Solaris(transfer.Adaptive, period),
		})
	}
	return out
}

// LotEnforcementResult reports the overfill experiment under one
// enforcement mode.
type LotEnforcementResult struct {
	Mode             string
	OverfillAccepted bool // a 150 MB file against a 100 MB lot
	// Lot1UsedMB shows whether the named lot's accounting exceeded its
	// capacity (the quota-backed anomaly) or the file spanned into the
	// second lot (NeST-managed).
	Lot1UsedMB        int64
	SecondLotUsableMB int64 // how much of the second 100 MB lot remained fillable
	WriteMBps         float64
}

// AblationLotEnforcement contrasts the two enforcement designs of §5:
// quota-backed lots accept overfilling one lot and then cannot fill
// the next to capacity; NeST-managed accounting spans files across
// lots and preserves the full guarantee, at the cost of monitoring
// writes inside NeST (modeled as a small per-write bookkeeping tax
// rather than the kernel's quota-tree updates).
func AblationLotEnforcement() []LotEnforcementResult {
	run := func(mode string) LotEnforcementResult {
		// The accounting behavior is exercised directly through the
		// lots package inside a simulated appliance.
		prof := sim.LinuxGbE()
		qm := quota.NewManager(mode == "quota-backed")
		rig := NewRig(prof, transfer.Options{Model: transfer.Threads, Slots: 4}, qm)
		res := LotEnforcementResult{Mode: mode}

		lotMode := lots.QuotaBacked
		if mode == "nest-managed" {
			lotMode = lots.NeSTManaged
		}
		mgr := lots.NewManager(rig.Clock, 1000*sim.MB, lotMode, qm)
		l1, _ := mgr.Create("john", 100*sim.MB, time.Hour)
		l2, _ := mgr.Create("john", 100*sim.MB, time.Hour)
		res.OverfillAccepted = mgr.ChargeWrite("john", l1.ID, "/big", 150*sim.MB) == nil
		if info, err := mgr.Lookup(l1.ID); err == nil {
			res.Lot1UsedMB = info.Used / sim.MB
		}
		// Binary-search how much of lot 2 is fillable.
		var usable int64
		for step := int64(100 * sim.MB); step >= sim.MB; step /= 2 {
			if mgr.ChargeWrite("john", l2.ID, "/probe", step) == nil {
				usable += step
			}
		}
		res.SecondLotUsableMB = usable / sim.MB

		// The write-path cost of the mode: kernel quota tree updates
		// for quota-backed lots (Figure 6), nothing extra for
		// NeST-managed accounting (its checks are in-memory).
		res.WriteMBps = runFig6Point(100, mode == "quota-backed")
		return res
	}
	return []LotEnforcementResult{run("quota-backed"), run("nest-managed")}
}

// ProcessModelResult extends Figure 5 with the process model the paper
// disabled "for the sake of clarity": heavier per-request hand-off than
// threads on both platforms, but still overlapping I/O.
type ProcessModelResult struct {
	SolarisLatencyMs   float64
	LinuxBandwidthMBps float64
}

// AblationProcessModel measures the process model on both Figure 5
// workloads.
func AblationProcessModel() ProcessModelResult {
	return ProcessModelResult{
		SolarisLatencyMs:   runFig5Solaris(transfer.Processes, DefaultProbePeriod),
		LinuxBandwidthMBps: runFig5Linux(transfer.Processes, DefaultProbePeriod),
	}
}

// AblationSeda measures the staged event-driven architecture the paper
// plans to investigate (§4.1, SEDA): event-like per-request cost on
// small requests with thread-like I/O overlap on disk-bound transfers.
func AblationSeda() ProcessModelResult {
	return ProcessModelResult{
		SolarisLatencyMs:   runFig5Solaris(transfer.Seda, DefaultProbePeriod),
		LinuxBandwidthMBps: runFig5Linux(transfer.Seda, DefaultProbePeriod),
	}
}

// CacheAwareResult compares FIFO and cache-aware scheduling on a
// half-hot workload.
type CacheAwareResult struct {
	Policy       string
	AvgLatencyMs float64
	TotalMBps    float64
}

// AblationCacheAware reproduces the §4.2 claim: scheduling predicted
// cache hits first approximates shortest-job-first, improving both
// response time and server throughput by reducing disk contention.
func AblationCacheAware() []CacheAwareResult {
	run := func(cacheAware bool) CacheAwareResult {
		prof := sim.LinuxGbE()
		opts := transfer.Options{Model: transfer.Threads, Slots: 4}
		rig := NewRig(prof, opts, nil)
		if cacheAware {
			// The policy probes the same cache model the simulated
			// filesystem runs on: the gray-box prediction is exact
			// here; the live appliance's model can drift.
			rig.Mgr.Close()
			mgrDone := make(chan *transfer.Manager, 1)
			rig.Clock.Run(func() {
				mgrDone <- transfer.NewManager(transfer.Options{
					Clock: rig.Clock, Profile: prof,
					Model: transfer.Threads, Slots: 4,
					Policy: sched.NewCacheAware(rig.FS.Cache(),
						220, prof.DiskMBps, prof.Seek),
				})
			})
			rig.Mgr = <-mgrDone
		}
		// Half the files fit in cache (hot), half never do (cold).
		hot := rig.PrepareFiles("hot", 4, 10*sim.MB, true)
		cold := rig.PrepareFiles("cold", 30, 10*sim.MB, false)
		spec := SpecChirp
		spec.ChunkSize = 64 * 1024
		res := rig.RunWorkload([]managerPool{
			{Mgr: rig.Mgr, Opt: ClientOptions{Spec: spec, Clients: 4, Files: hot}},
			{Mgr: rig.Mgr, Opt: ClientOptions{Spec: specRenamed(spec, "cold"), Clients: 4, Files: cold}},
		}, time.Second, 15*time.Second)
		name := "fifo"
		if cacheAware {
			name = "cache-aware"
		}
		return CacheAwareResult{
			Policy:       name,
			AvgLatencyMs: float64(res.AvgLat["chirp"]) / float64(time.Millisecond),
			TotalMBps:    res.Total,
		}
	}
	return []CacheAwareResult{run(false), run(true)}
}

func specRenamed(s ProtoSpec, name string) ProtoSpec {
	s.Name = name
	return s
}

// FormatAblations renders every ablation as one report.
func FormatAblations() string {
	var sb strings.Builder
	sb.WriteString("Ablations\n=========\n\n")

	byteBased, requestBased := AblationStrideCharging()
	sb.WriteString("1. Stride charging (equal tickets): byte-based vs request-based\n")
	fmt.Fprintf(&sb, "   byte-based:    nfs %.1f MB/s of total %.1f (fairness %.3f)\n",
		byteBased.Result.PerClass["nfs"], byteBased.Result.Total, byteBased.Fairness)
	fmt.Fprintf(&sb, "   request-based: nfs %.1f MB/s of total %.1f (fairness %.3f)\n\n",
		requestBased.Result.PerClass["nfs"], requestBased.Result.Total, requestBased.Fairness)

	wc, nwc := AblationNonWorkConserving()
	sb.WriteString("2. 1:1:1:4 (NFS-favoring) stride: work-conserving vs idle-wait\n")
	fmt.Fprintf(&sb, "   work-conserving: nfs %.1f MB/s, total %.1f, fairness %.3f\n",
		wc.Result.PerClass["nfs"], wc.Result.Total, wc.Fairness)
	fmt.Fprintf(&sb, "   idle-wait:       nfs %.1f MB/s, total %.1f, fairness %.3f\n\n",
		nwc.Result.PerClass["nfs"], nwc.Result.Total, nwc.Fairness)

	sb.WriteString("3. Adaptation probe period (Solaris 1 KB workload)\n")
	for _, p := range AblationProbePeriod() {
		fmt.Fprintf(&sb, "   probe every %-6v avg latency %.2f ms\n", p.Period, p.LatencyMs)
	}
	sb.WriteString("\n4. Lot enforcement: overfill a 100 MB lot with 150 MB, then fill a second\n")
	for _, r := range AblationLotEnforcement() {
		fmt.Fprintf(&sb, "   %-13s overfill accepted: %-5v lot1 used: %3d MB, second lot usable: %3d MB, 100MB write: %.1f MB/s\n",
			r.Mode, r.OverfillAccepted, r.Lot1UsedMB, r.SecondLotUsableMB, r.WriteMBps)
	}
	sb.WriteString("\n5. Cache-aware scheduling (half-hot workload)\n")
	for _, r := range AblationCacheAware() {
		fmt.Fprintf(&sb, "   %-12s avg latency %7.1f ms, total %5.1f MB/s\n",
			r.Policy, r.AvgLatencyMs, r.TotalMBps)
	}

	pm := AblationProcessModel()
	sb.WriteString("\n6. Process model (disabled in the paper's Figure 5 for clarity)\n")
	fmt.Fprintf(&sb, "   solaris 1KB: %.2f ms/request   linux 10MB: %.1f MB/s\n",
		pm.SolarisLatencyMs, pm.LinuxBandwidthMBps)

	seda := AblationSeda()
	sb.WriteString("\n7. SEDA staged architecture (paper §4.1 future work)\n")
	fmt.Fprintf(&sb, "   solaris 1KB: %.2f ms/request   linux 10MB: %.1f MB/s\n",
		seda.SolarisLatencyMs, seda.LinuxBandwidthMBps)
	return sb.String()
}
