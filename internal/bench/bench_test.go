package bench

import (
	"strings"
	"testing"

	"nest/internal/transfer"
)

// The tests assert the paper's qualitative shapes, not absolute
// numbers: who wins, by roughly what factor, and where behavior
// breaks.

func TestFig3SingleProtocolParity(t *testing.T) {
	// NeST's multi-protocol framework should deliver essentially
	// native performance on each single-protocol workload (paper
	// §7.1).
	for _, spec := range []ProtoSpec{SpecChirp, SpecNFS} {
		nest := runProtocolWorkload([]ProtoSpec{spec}, false)
		jbos := runProtocolWorkload([]ProtoSpec{spec}, true)
		ratio := nest.Total / jbos.Total
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: NeST %.1f vs native %.1f (ratio %.2f)", spec.Name, nest.Total, jbos.Total, ratio)
		}
	}
}

func TestFig3ProtocolTiers(t *testing.T) {
	// Chirp saturates the wire; GridFTP and NFS reach roughly half of
	// it (paper Figure 3).
	chirp := runProtocolWorkload([]ProtoSpec{SpecChirp}, false).Total
	gridftp := runProtocolWorkload([]ProtoSpec{SpecGridFTP}, false).Total
	nfs := runProtocolWorkload([]ProtoSpec{SpecNFS}, false).Total
	if chirp < 30 {
		t.Errorf("chirp = %.1f, want near wire speed (~35)", chirp)
	}
	for name, bw := range map[string]float64{"gridftp": gridftp, "nfs": nfs} {
		frac := bw / chirp
		if frac < 0.35 || frac > 0.75 {
			t.Errorf("%s = %.1f MB/s, want roughly half of chirp's %.1f", name, bw, chirp)
		}
	}
}

func TestFig3MixedDisfavorsNFS(t *testing.T) {
	nest := runProtocolWorkload(MixedSpecs(), false)
	jbos := runProtocolWorkload(MixedSpecs(), true)
	// Totals are similar...
	tr := nest.Total / jbos.Total
	if tr < 0.8 || tr > 1.25 {
		t.Errorf("mixed totals: NeST %.1f vs JBOS %.1f", nest.Total, jbos.Total)
	}
	// ...but FIFO NeST delivers NFS clearly less than the independent
	// nfsd does (paper §7.1's closing observation).
	if nest.PerClass["nfs"] >= jbos.PerClass["nfs"]*0.8 {
		t.Errorf("NFS mixed: NeST %.1f vs JBOS %.1f, expected NeST clearly lower",
			nest.PerClass["nfs"], jbos.PerClass["nfs"])
	}
}

func TestFig4EqualTicketsFair(t *testing.T) {
	row := RunFig4Config(Fig4Configs()[1]) // 1:1:1:1
	if row.Fairness < 0.97 {
		t.Errorf("1:1:1:1 fairness = %.3f, want >= 0.97 (paper: > 0.98)", row.Fairness)
	}
}

func TestFig4SkewedTickets(t *testing.T) {
	row := RunFig4Config(Fig4Configs()[3]) // 3:1:2:1
	if row.Fairness < 0.95 {
		t.Errorf("3:1:2:1 fairness = %.3f, want >= 0.95", row.Fairness)
	}
	// Chirp (3 tickets) must clearly outrun NFS (1 ticket).
	if row.Result.PerClass["chirp"] < 2*row.Result.PerClass["nfs"] {
		t.Errorf("3:1 ratio not visible: chirp %.1f vs nfs %.1f",
			row.Result.PerClass["chirp"], row.Result.PerClass["nfs"])
	}
}

func TestFig4NFSFavoringFails(t *testing.T) {
	// 1:1:1:4: there are not enough NFS requests to consume a 4x
	// share; the work-conserving scheduler falls back and fairness
	// drops to ~0.87 (paper §7.2).
	row := RunFig4Config(Fig4Configs()[4])
	if row.Fairness > 0.93 {
		t.Errorf("1:1:1:4 fairness = %.3f, expected the paper's visible failure (~0.87)", row.Fairness)
	}
	if row.Fairness < 0.70 {
		t.Errorf("1:1:1:4 fairness = %.3f, collapsed far below the paper's ~0.87", row.Fairness)
	}
}

func TestFig5SolarisEventsBeatThreads(t *testing.T) {
	events := runFig5Solaris(transfer.Events, DefaultProbePeriod)
	threads := runFig5Solaris(transfer.Threads, DefaultProbePeriod)
	adaptive := runFig5Solaris(transfer.Adaptive, DefaultProbePeriod)
	if events >= threads {
		t.Errorf("Solaris 1KB: events %.2fms !< threads %.2fms", events, threads)
	}
	if adaptive < events*0.95 || adaptive > threads {
		t.Errorf("adaptive %.2fms not between events %.2fms and threads %.2fms",
			adaptive, events, threads)
	}
}

func TestFig5LinuxThreadsBeatEvents(t *testing.T) {
	events := runFig5Linux(transfer.Events, DefaultProbePeriod)
	threads := runFig5Linux(transfer.Threads, DefaultProbePeriod)
	adaptive := runFig5Linux(transfer.Adaptive, DefaultProbePeriod)
	if threads <= events {
		t.Errorf("Linux 10MB: threads %.1f !> events %.1f", threads, events)
	}
	if adaptive <= events || adaptive > threads*1.05 {
		t.Errorf("adaptive %.1f not between events %.1f and threads %.1f",
			adaptive, events, threads)
	}
}

func TestFig6QuotaOverheadGrowsWithSize(t *testing.T) {
	small := RunFig6SinglePoint(20)
	large := RunFig6SinglePoint(200)
	smallRatio := small.QuotaOffMBps / small.QuotaOnMBps
	largeRatio := large.QuotaOffMBps / large.QuotaOnMBps
	if smallRatio > 1.15 {
		t.Errorf("20MB ratio = %.2f, want negligible overhead for small writes", smallRatio)
	}
	if largeRatio < 1.5 || largeRatio > 2.5 {
		t.Errorf("200MB ratio = %.2f, want roughly 2x (paper: ~50%% bandwidth loss)", largeRatio)
	}
}

func TestFig6ReadsUnaffected(t *testing.T) {
	off, on := RunFig6Reads()
	if on < off*0.98 || on > off*1.02 {
		t.Errorf("read bandwidth with quotas %.1f vs without %.1f, want unchanged", on, off)
	}
}

func TestAblationStrideCharging(t *testing.T) {
	byteBased, requestBased := AblationStrideCharging()
	if byteBased.Result.PerClass["nfs"] < 3*requestBased.Result.PerClass["nfs"] {
		t.Errorf("byte-based nfs %.1f vs request-based %.1f: request charging should starve NFS",
			byteBased.Result.PerClass["nfs"], requestBased.Result.PerClass["nfs"])
	}
}

func TestAblationNonWorkConserving(t *testing.T) {
	wc, nwc := AblationNonWorkConserving()
	if nwc.Fairness <= wc.Fairness {
		t.Errorf("idle-wait fairness %.3f !> work-conserving %.3f", nwc.Fairness, wc.Fairness)
	}
	if nwc.Result.Total >= wc.Result.Total {
		t.Errorf("idle-wait total %.1f should pay a bandwidth penalty vs %.1f",
			nwc.Result.Total, wc.Result.Total)
	}
}

func TestAblationLotEnforcement(t *testing.T) {
	results := AblationLotEnforcement()
	var quotaMode, nestMode LotEnforcementResult
	for _, r := range results {
		if r.Mode == "quota-backed" {
			quotaMode = r
		} else {
			nestMode = r
		}
	}
	if !quotaMode.OverfillAccepted || quotaMode.Lot1UsedMB != 150 {
		t.Errorf("quota-backed overfill: %+v (want 150MB recorded against a 100MB lot)", quotaMode)
	}
	if nestMode.Lot1UsedMB != 100 {
		t.Errorf("nest-managed lot1 used = %dMB, want capped at 100 (file spans)", nestMode.Lot1UsedMB)
	}
	if quotaMode.WriteMBps >= nestMode.WriteMBps {
		t.Errorf("quota-backed writes %.1f should be slower than nest-managed %.1f",
			quotaMode.WriteMBps, nestMode.WriteMBps)
	}
}

func TestAblationCacheAware(t *testing.T) {
	results := AblationCacheAware()
	fifo, aware := results[0], results[1]
	if aware.AvgLatencyMs >= fifo.AvgLatencyMs {
		t.Errorf("cache-aware latency %.0fms !< fifo %.0fms", aware.AvgLatencyMs, fifo.AvgLatencyMs)
	}
	if aware.TotalMBps <= fifo.TotalMBps {
		t.Errorf("cache-aware throughput %.1f !> fifo %.1f", aware.TotalMBps, fifo.TotalMBps)
	}
}

func TestFormatters(t *testing.T) {
	rows3 := []Fig3Row{{Workload: "chirp", Baseline: "x",
		NeST: Measurement{Total: 1, PerClass: map[string]float64{"chirp": 1}},
		JBOS: Measurement{Total: 1, PerClass: map[string]float64{"chirp": 1}}}}
	if !strings.Contains(FormatFig3(rows3), "chirp") {
		t.Error("FormatFig3 missing data")
	}
	if !strings.Contains(FormatFig5([]Fig5Row{{Platform: "linux", Model: transfer.Threads, BandwidthMBps: 5}}), "linux") {
		t.Error("FormatFig5 missing data")
	}
	if !strings.Contains(FormatFig6([]Fig6Row{{WriteSizeMB: 20, QuotaOffMBps: 2, QuotaOnMBps: 1}}, 1, 1), "20") {
		t.Error("FormatFig6 missing data")
	}
}

func TestAblationProcessModel(t *testing.T) {
	pm := AblationProcessModel()
	events := runFig5Solaris(transfer.Events, DefaultProbePeriod)
	threads := runFig5Linux(transfer.Threads, DefaultProbePeriod)
	eventsLinux := runFig5Linux(transfer.Events, DefaultProbePeriod)
	// Processes pay the heaviest per-request cost on small requests...
	if pm.SolarisLatencyMs <= events {
		t.Errorf("process latency %.2fms <= events %.2fms", pm.SolarisLatencyMs, events)
	}
	// ...but overlap I/O like threads on the disk-bound workload,
	// beating the event loop.
	if pm.LinuxBandwidthMBps <= eventsLinux {
		t.Errorf("process bandwidth %.1f <= events %.1f", pm.LinuxBandwidthMBps, eventsLinux)
	}
	if pm.LinuxBandwidthMBps > threads*1.05 {
		t.Errorf("process bandwidth %.1f exceeds threads %.1f", pm.LinuxBandwidthMBps, threads)
	}
}

func TestAblationSeda(t *testing.T) {
	seda := AblationSeda()
	threadsLat := runFig5Solaris(transfer.Threads, DefaultProbePeriod)
	eventsBW := runFig5Linux(transfer.Events, DefaultProbePeriod)
	// SEDA's pitch: near-event latency on small requests...
	if seda.SolarisLatencyMs >= threadsLat {
		t.Errorf("seda latency %.2fms >= threads %.2fms", seda.SolarisLatencyMs, threadsLat)
	}
	// ...with thread-like overlap on disk-bound transfers.
	if seda.LinuxBandwidthMBps <= eventsBW {
		t.Errorf("seda bandwidth %.1f <= events %.1f", seda.LinuxBandwidthMBps, eventsBW)
	}
}

// TestDeterministicRuns: the virtual-time harness is reproducible —
// identical configurations agree to well under a percent. (Bit-exact
// equality would require deterministic goroutine scheduling: when two
// simulated events are simultaneous, the Go scheduler picks who
// reserves a resource first, perturbing results in the fourth decimal.)
func TestDeterministicRuns(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs scheduling; reproducibility is asserted without it")
	}
	a := RunFig4Config(Fig4Configs()[1])
	b := RunFig4Config(Fig4Configs()[1])
	close := func(x, y float64) bool {
		if y == 0 {
			return x == 0
		}
		r := x / y
		return r > 0.995 && r < 1.005
	}
	if !close(a.Fairness, b.Fairness) || !close(a.Result.Total, b.Result.Total) {
		t.Errorf("runs differ: %.6f/%.4f vs %.6f/%.4f",
			a.Result.Total, a.Fairness, b.Result.Total, b.Fairness)
	}
	for class, bw := range a.Result.PerClass {
		if !close(bw, b.Result.PerClass[class]) {
			t.Errorf("class %s differs: %.6f vs %.6f", class, bw, b.Result.PerClass[class])
		}
	}
}
