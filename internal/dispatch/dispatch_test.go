package dispatch_test

import (
	"bytes"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/classad"
	"nest/internal/dispatch"
	"nest/internal/gsi"
	"nest/internal/lots"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// fakeSession scripts a sequence of requests and records replies,
// exercising the dispatcher without any wire protocol.
type fakeSession struct {
	mu      sync.Mutex
	reqs    []*protocol.Request
	replies []*protocol.Reply
	sent    bytes.Buffer
	recv    io.Reader
	closed  bool
}

func (s *fakeSession) Proto() string { return "fake" }
func (s *fakeSession) User() string  { return "tester" }

func (s *fakeSession) Next() (*protocol.Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.reqs) == 0 {
		return nil, io.EOF
	}
	req := s.reqs[0]
	s.reqs = s.reqs[1:]
	return req, nil
}

func (s *fakeSession) Reply(req *protocol.Request, rep *protocol.Reply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replies = append(s.replies, rep)
	return nil
}

func (s *fakeSession) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	return protocol.NopWriteCloser(&s.sent), nil
}

func (s *fakeSession) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	if s.recv == nil {
		return nil, errors.New("no body scripted")
	}
	return io.NopCloser(s.recv), nil
}

func (s *fakeSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func newDispatcher(t testing.TB) (*dispatch.Dispatcher, *storage.Manager) {
	t.Helper()
	clock := sim.NewRealClock()
	fs := storage.NewMemFS(clock, 1<<30)
	table := acl.NewTable(acl.AllRights, gsi.Anonymous)
	lotMgr := lots.NewManager(clock, 1<<30, lots.NeSTManaged, nil)
	store := storage.NewManager(fs, table, lotMgr)
	lotMgr.Create("tester", 100<<20, time.Hour)
	xfer := transfer.NewManager(transfer.Options{Clock: clock, Model: transfer.Threads})
	d := dispatch.New(clock, store, xfer)
	t.Cleanup(func() {
		d.Close()
		xfer.Close()
	})
	return d, store
}

func TestServeSessionRoutesStorageOps(t *testing.T) {
	d, store := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpMkdir, Path: "/d"},
		{Op: protocol.OpStat, Path: "/d"},
		{Op: protocol.OpList, Path: "/"},
	}}
	d.ServeSession(s)
	if len(s.replies) != 3 {
		t.Fatalf("replies = %d", len(s.replies))
	}
	for i, rep := range s.replies {
		if !rep.OK() {
			t.Errorf("reply %d: %+v", i, rep)
		}
	}
	if _, err := store.FS().Stat("/d"); err != nil {
		t.Errorf("mkdir did not land: %v", err)
	}
	if !s.closed {
		t.Error("session not closed at EOF")
	}
}

func TestServeSessionQuit(t *testing.T) {
	d, _ := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpQuit},
		{Op: protocol.OpMkdir, Path: "/never"}, // must not execute
	}}
	d.ServeSession(s)
	if len(s.replies) != 1 || !s.replies[0].OK() {
		t.Fatalf("replies = %+v", s.replies)
	}
}

func TestServeSessionTransferRoundTrip(t *testing.T) {
	d, _ := newDispatcher(t)
	payload := []byte("dispatcher-pumped payload")
	put := &protocol.Request{Op: protocol.OpPut, Path: "/f", Size: int64(len(payload))}
	get := &protocol.Request{Op: protocol.OpGet, Path: "/f"}
	s := &fakeSession{
		reqs: []*protocol.Request{put, get},
		recv: bytes.NewReader(payload),
	}
	d.ServeSession(s)
	if len(s.replies) != 2 {
		t.Fatalf("replies = %+v", s.replies)
	}
	if !s.replies[0].OK() || s.replies[0].Size != int64(len(payload)) {
		t.Errorf("put reply = %+v", s.replies[0])
	}
	if !s.replies[1].OK() {
		t.Errorf("get reply = %+v", s.replies[1])
	}
	if !bytes.Equal(s.sent.Bytes(), payload) {
		t.Errorf("get data = %q", s.sent.Bytes())
	}
	// The transfer went through the transfer manager.
	stats := d.Transfers().Metrics().Class("fake")
	if stats.Requests != 2 || stats.Bytes != 2*int64(len(payload)) {
		t.Errorf("metrics = %+v", stats)
	}
}

func TestServeSessionRejectedTransfer(t *testing.T) {
	d, _ := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpGet, Path: "/missing"},
	}}
	d.ServeSession(s)
	if len(s.replies) != 1 || s.replies[0].Code != protocol.CodeNotFound {
		t.Fatalf("replies = %+v", s.replies)
	}
}

func TestServeSessionUserStamped(t *testing.T) {
	d, store := newDispatcher(t)
	// Deny the session's user and verify enforcement used it.
	store.ACL().Set("/", "tester", 0)
	store.ACL().Set("/", acl.AnyUser, 0)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpMkdir, Path: "/d"},
	}}
	d.ServeSession(s)
	if s.replies[0].Code != protocol.CodePermission {
		t.Errorf("reply = %+v, want permission denied for stamped user", s.replies[0])
	}
}

func TestAdvertisementListsProtocols(t *testing.T) {
	d, _ := newDispatcher(t)
	ad := d.Advertisement("unit")
	if name, _ := ad.EvalAttr("Name", nil).StringVal(); name != "unit" {
		t.Errorf("Name = %q", name)
	}
	if v, _ := ad.EvalAttr("Schedule", nil).StringVal(); v != "fifo" {
		t.Errorf("Schedule = %q", v)
	}
	if v, _ := ad.EvalAttr("ConcurrencyModel", nil).StringVal(); v != "threads" {
		t.Errorf("ConcurrencyModel = %q", v)
	}
}

func TestPublishStopsOnClose(t *testing.T) {
	d, _ := newDispatcher(t)
	var mu sync.Mutex
	count := 0
	d.Publish("p", 5*time.Millisecond, func(ad *classad.Ad) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	time.Sleep(30 * time.Millisecond)
	d.Close()
	mu.Lock()
	atClose := count
	mu.Unlock()
	if atClose == 0 {
		t.Fatal("no advertisements published")
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count > atClose+1 { // one in-flight tick may land
		t.Errorf("publishing continued after Close: %d -> %d", atClose, count)
	}
}

// lockedBuffer is a goroutine-safe log sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Text() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// failingHandler rejects every connection at the handshake.
type failingHandler struct{}

func (failingHandler) Proto() string { return "broken" }
func (failingHandler) NewSession(conn net.Conn) (protocol.Session, error) {
	return nil, errors.New("handshake refused")
}

func TestServeListenerHandshakeFailure(t *testing.T) {
	d, _ := newDispatcher(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	logBuf := &lockedBuffer{}
	d.Logger = log.New(logBuf, "", 0)
	go d.ServeListener(ln, failingHandler{})
	// Connections are accepted, rejected, and the listener survives.
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Error("refused session delivered data")
		}
		conn.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logBuf.Text(), "handshake") {
		if time.Now().After(deadline) {
			t.Fatal("handshake failure not logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRegisterAfterClose(t *testing.T) {
	d, _ := newDispatcher(t)
	d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if d.Register(ln, "late") {
		t.Error("Register succeeded after Close")
	}
	// The listener was closed for us.
	if _, err := ln.Accept(); err == nil {
		t.Error("listener still accepting after rejected Register")
	}
}
