package dispatch_test

import (
	"bytes"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/classad"
	"nest/internal/discovery"
	"nest/internal/dispatch"
	"nest/internal/gsi"
	"nest/internal/lots"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// fakeSession scripts a sequence of requests and records replies,
// exercising the dispatcher without any wire protocol.
type fakeSession struct {
	mu      sync.Mutex
	reqs    []*protocol.Request
	replies []*protocol.Reply
	sent    bytes.Buffer
	recv    io.Reader
	closed  bool
}

func (s *fakeSession) Proto() string { return "fake" }
func (s *fakeSession) User() string  { return "tester" }

func (s *fakeSession) Next() (*protocol.Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.reqs) == 0 {
		return nil, io.EOF
	}
	req := s.reqs[0]
	s.reqs = s.reqs[1:]
	return req, nil
}

func (s *fakeSession) Reply(req *protocol.Request, rep *protocol.Reply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replies = append(s.replies, rep)
	return nil
}

func (s *fakeSession) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	return protocol.NopWriteCloser(&s.sent), nil
}

func (s *fakeSession) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	if s.recv == nil {
		return nil, errors.New("no body scripted")
	}
	return io.NopCloser(s.recv), nil
}

func (s *fakeSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func newDispatcher(t testing.TB) (*dispatch.Dispatcher, *storage.Manager) {
	t.Helper()
	clock := sim.NewRealClock()
	fs := storage.NewMemFS(clock, 1<<30)
	table := acl.NewTable(acl.AllRights, gsi.Anonymous)
	lotMgr := lots.NewManager(clock, 1<<30, lots.NeSTManaged, nil)
	store := storage.NewManager(fs, table, lotMgr)
	lotMgr.Create("tester", 100<<20, time.Hour)
	xfer := transfer.NewManager(transfer.Options{Clock: clock, Model: transfer.Threads})
	d := dispatch.New(clock, store, xfer)
	t.Cleanup(func() {
		d.Close()
		xfer.Close()
	})
	return d, store
}

func TestServeSessionRoutesStorageOps(t *testing.T) {
	d, store := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpMkdir, Path: "/d"},
		{Op: protocol.OpStat, Path: "/d"},
		{Op: protocol.OpList, Path: "/"},
	}}
	d.ServeSession(s)
	if len(s.replies) != 3 {
		t.Fatalf("replies = %d", len(s.replies))
	}
	for i, rep := range s.replies {
		if !rep.OK() {
			t.Errorf("reply %d: %+v", i, rep)
		}
	}
	if _, err := store.FS().Stat("/d"); err != nil {
		t.Errorf("mkdir did not land: %v", err)
	}
	if !s.closed {
		t.Error("session not closed at EOF")
	}
}

func TestServeSessionQuit(t *testing.T) {
	d, _ := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpQuit},
		{Op: protocol.OpMkdir, Path: "/never"}, // must not execute
	}}
	d.ServeSession(s)
	if len(s.replies) != 1 || !s.replies[0].OK() {
		t.Fatalf("replies = %+v", s.replies)
	}
}

func TestServeSessionTransferRoundTrip(t *testing.T) {
	d, _ := newDispatcher(t)
	payload := []byte("dispatcher-pumped payload")
	put := &protocol.Request{Op: protocol.OpPut, Path: "/f", Size: int64(len(payload))}
	get := &protocol.Request{Op: protocol.OpGet, Path: "/f"}
	s := &fakeSession{
		reqs: []*protocol.Request{put, get},
		recv: bytes.NewReader(payload),
	}
	d.ServeSession(s)
	if len(s.replies) != 2 {
		t.Fatalf("replies = %+v", s.replies)
	}
	if !s.replies[0].OK() || s.replies[0].Size != int64(len(payload)) {
		t.Errorf("put reply = %+v", s.replies[0])
	}
	if !s.replies[1].OK() {
		t.Errorf("get reply = %+v", s.replies[1])
	}
	if !bytes.Equal(s.sent.Bytes(), payload) {
		t.Errorf("get data = %q", s.sent.Bytes())
	}
	// The transfer went through the transfer manager.
	stats := d.Transfers().Metrics().Class("fake")
	if stats.Requests != 2 || stats.Bytes != 2*int64(len(payload)) {
		t.Errorf("metrics = %+v", stats)
	}
}

func TestServeSessionRejectedTransfer(t *testing.T) {
	d, _ := newDispatcher(t)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpGet, Path: "/missing"},
	}}
	d.ServeSession(s)
	if len(s.replies) != 1 || s.replies[0].Code != protocol.CodeNotFound {
		t.Fatalf("replies = %+v", s.replies)
	}
}

func TestServeSessionUserStamped(t *testing.T) {
	d, store := newDispatcher(t)
	// Deny the session's user and verify enforcement used it.
	store.ACL().Set("/", "tester", 0)
	store.ACL().Set("/", acl.AnyUser, 0)
	s := &fakeSession{reqs: []*protocol.Request{
		{Op: protocol.OpMkdir, Path: "/d"},
	}}
	d.ServeSession(s)
	if s.replies[0].Code != protocol.CodePermission {
		t.Errorf("reply = %+v, want permission denied for stamped user", s.replies[0])
	}
}

func TestAdvertisementListsProtocols(t *testing.T) {
	d, _ := newDispatcher(t)
	ad := d.Advertisement("unit")
	if name, _ := ad.EvalAttr("Name", nil).StringVal(); name != "unit" {
		t.Errorf("Name = %q", name)
	}
	if v, _ := ad.EvalAttr("Schedule", nil).StringVal(); v != "fifo" {
		t.Errorf("Schedule = %q", v)
	}
	if v, _ := ad.EvalAttr("ConcurrencyModel", nil).StringVal(); v != "threads" {
		t.Errorf("ConcurrencyModel = %q", v)
	}
}

func TestPublishStopsOnClose(t *testing.T) {
	d, _ := newDispatcher(t)
	var mu sync.Mutex
	count := 0
	d.Publish("p", 5*time.Millisecond, func(ad *classad.Ad) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	time.Sleep(30 * time.Millisecond)
	d.Close()
	mu.Lock()
	atClose := count
	mu.Unlock()
	if atClose == 0 {
		t.Fatal("no advertisements published")
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count > atClose+1 { // one in-flight tick may land
		t.Errorf("publishing continued after Close: %d -> %d", atClose, count)
	}
}

// lockedBuffer is a goroutine-safe log sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Text() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// failingHandler rejects every connection at the handshake.
type failingHandler struct{}

func (failingHandler) Proto() string { return "broken" }
func (failingHandler) NewSession(conn net.Conn) (protocol.Session, error) {
	return nil, errors.New("handshake refused")
}

func TestServeListenerHandshakeFailure(t *testing.T) {
	d, _ := newDispatcher(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	logBuf := &lockedBuffer{}
	d.SetLogger(log.New(logBuf, "", 0))
	go d.ServeListener(ln, failingHandler{})
	// Connections are accepted, rejected, and the listener survives.
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err == nil {
			t.Error("refused session delivered data")
		}
		conn.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logBuf.Text(), "handshake") {
		if time.Now().After(deadline) {
			t.Fatal("handshake failure not logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRegisterAfterClose(t *testing.T) {
	d, _ := newDispatcher(t)
	d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if d.Register(ln, "late") {
		t.Error("Register succeeded after Close")
	}
	// The listener was closed for us.
	if _, err := ln.Accept(); err == nil {
		t.Error("listener still accepting after rejected Register")
	}
}

// driveTraffic pushes a put, a get and a spread of control-plane ops
// through the dispatcher so observability state is live.
func driveTraffic(t *testing.T, d *dispatch.Dispatcher) {
	t.Helper()
	payload := strings.Repeat("telemetry ", 1000)
	s := &fakeSession{
		recv: strings.NewReader(payload),
		reqs: []*protocol.Request{
			{Op: protocol.OpPut, Path: "/t.bin", Size: int64(len(payload))},
			{Op: protocol.OpGet, Path: "/t.bin"},
			{Op: protocol.OpStat, Path: "/t.bin"},
			{Op: protocol.OpList, Path: "/"},
			{Op: protocol.OpMkdir, Path: "/dir"},
			{Op: protocol.OpPing},
		},
	}
	d.ServeSession(s)
	for i, rep := range s.replies {
		if !rep.OK() {
			t.Fatalf("request %d failed: %s", i, rep.Message)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	d, _ := newDispatcher(t)
	driveTraffic(t, d)
	text := d.Obs().Text()
	for _, want := range []string{
		`nest_dispatch_op_total{proto="fake",op="get"} 1`,
		`nest_dispatch_op_total{proto="fake",op="put"} 1`,
		`nest_dispatch_op_total{proto="fake",op="stat"} 1`,
		`nest_dispatch_op_total{proto="fake",op="mkdir"} 1`,
		"nest_dispatch_latency_transfer_ns_count 2",
		"nest_transfer_submits_total 2",
		"nest_transfer_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestStatusPageRoutes(t *testing.T) {
	d, _ := newDispatcher(t)
	driveTraffic(t, d)
	if body, ok := d.StatusPage("/healthz"); !ok || body != "ok\n" {
		t.Errorf("/healthz = %q, %v", body, ok)
	}
	if body, ok := d.StatusPage("/metrics"); !ok || !strings.Contains(body, "nest_dispatch_latency_read_ns_count") {
		t.Errorf("/metrics not served: %v", ok)
	}
	body, ok := d.StatusPage("/statusz")
	if !ok || !strings.Contains(body, "NeST appliance status") {
		t.Fatalf("/statusz not served: %v", ok)
	}
	if !strings.Contains(body, "fake") {
		t.Error("/statusz missing per-protocol section")
	}
	if _, ok := d.StatusPage("/some/file"); ok {
		t.Error("StatusPage claimed a regular file path")
	}
}

func TestTransfersAlwaysTraced(t *testing.T) {
	d, _ := newDispatcher(t)
	// Transfers below the sampling rate still reach the slow ring when
	// they exceed the threshold; force that by making everything slow.
	d.SetSlowThreshold(1 * time.Nanosecond)
	driveTraffic(t, d)
	slow := d.SlowTraces()
	var gets, puts int
	for _, tr := range slow {
		switch tr.Op {
		case "get":
			gets++
		case "put":
			puts++
		}
	}
	if gets == 0 || puts == 0 {
		t.Errorf("slow ring missing transfers: %d gets, %d puts (%d traces)", gets, puts, len(slow))
	}
	for _, tr := range slow {
		if tr.ID == 0 || tr.Proto != "fake" || tr.Total <= 0 {
			t.Errorf("malformed trace %+v", tr)
		}
	}
}

func TestAdvertisementHealthAttrs(t *testing.T) {
	d, _ := newDispatcher(t)
	driveTraffic(t, d)
	ad := d.Advertisement("health")
	if v, ok := ad.EvalAttr("QueueDepth", nil).IntVal(); !ok || v < 0 {
		t.Errorf("QueueDepth = %d, %v", v, ok)
	}
	if v, ok := ad.EvalAttr("P99LatencyMs", nil).RealVal(); !ok || v < 0 {
		t.Errorf("P99LatencyMs = %v, %v", v, ok)
	}
	if v, ok := ad.EvalAttr("RecentBandwidthMBps", nil).RealVal(); !ok || v <= 0 {
		t.Errorf("RecentBandwidthMBps = %v, %v (traffic just moved bytes)", v, ok)
	}
	if v, ok := ad.EvalAttr("RecentBandwidthMBps_fake", nil).RealVal(); !ok || v <= 0 {
		t.Errorf("RecentBandwidthMBps_fake = %v, %v", v, ok)
	}
	// The window resets on every Advertisement: with no traffic since
	// the last call, recent bandwidth drops back toward zero.
	ad2 := d.Advertisement("health")
	if v, _ := ad2.EvalAttr("RecentBandwidthMBps", nil).RealVal(); v != 0 {
		t.Errorf("idle window bandwidth = %v, want 0", v)
	}
}

// TestDiscoveryMatchesOnHealth drives the paper's discovery path with
// the new health attributes: the dispatcher's advertisement lands in a
// collector and a requester can constrain placement on live load
// (queue depth, p99 latency, recent bandwidth), not just capacity.
func TestDiscoveryMatchesOnHealth(t *testing.T) {
	d, _ := newDispatcher(t)
	driveTraffic(t, d)
	coll := discovery.NewCollector(nil, time.Minute)
	if err := coll.Advertise(d.Advertisement("obs-nest")); err != nil {
		t.Fatal(err)
	}
	ads, err := coll.Query(`QueueDepth == 0 && P99LatencyMs >= 0 && RecentBandwidthMBps > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 1 {
		t.Fatalf("health constraint matched %d ads, want 1", len(ads))
	}
	if name, _ := ads[0].EvalAttr("Name", nil).StringVal(); name != "obs-nest" {
		t.Errorf("matched ad Name = %q", name)
	}
	// A constraint demanding an idle-beyond-possible appliance (deep
	// queue) must not match.
	ads, err = coll.Query(`QueueDepth > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 0 {
		t.Errorf("impossible constraint matched %d ads", len(ads))
	}
}
