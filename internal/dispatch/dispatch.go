// Package dispatch implements NeST's dispatcher (paper §2.1): the main
// scheduler and macro-request router. It accepts client connections
// through protocol handlers, drives each virtual protocol connection,
// routes data-movement requests to the transfer manager and everything
// else to the storage manager (serialized, in a thread-safe schedule),
// and periodically consolidates resource information into a ClassAd
// for publication into a global scheduling system.
package dispatch

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/classad"
	"nest/internal/connmgr"
	"nest/internal/discovery"
	"nest/internal/obs"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// MaxAdvertisedReplicas caps the number of file paths an appliance
// lists in its ClassAd's Replicas attribute. The advertisement is a
// periodic full-state refresh, so the cap bounds ad size (and collector
// memory) on appliances holding very many files; the replica catalog is
// best-effort beyond it.
const MaxAdvertisedReplicas = 4096

// nextAcceptBackoff doubles an accept-retry delay up to a 1s cap.
func nextAcceptBackoff(cur time.Duration) time.Duration {
	if cur <= 0 {
		return 5 * time.Millisecond
	}
	if cur >= time.Second/2 {
		return time.Second
	}
	return cur * 2
}

// Dispatcher routes requests between the protocol layer, the storage
// manager and the transfer manager.
type Dispatcher struct {
	clock sim.Clock
	store *storage.Manager
	xfer  *transfer.Manager

	// storageMu orders non-transfer requests at the storage manager.
	// Mutating ops take the write lock and execute in the paper's
	// serialized, thread-safe schedule (§2.1); read-only ops (stat,
	// list, ping, statfs, acl_get, lot_status) take the read lock and
	// run concurrently with each other, relying on the reader locks of
	// the components below (acl, lots, quota, cache, memfs).
	storageMu sync.RWMutex

	mu        sync.Mutex
	listeners []net.Listener
	protocols []string
	sessions  map[protocol.Session]bool
	closed    bool
	wg        sync.WaitGroup

	// logger receives connection-level diagnostics; nil silences. It is
	// an atomic pointer so SetLogger is safe after accept goroutines
	// have started (the old bare exported field raced with logf).
	logger atomic.Pointer[log.Logger]

	// cm is the optional connection front end (admission, shedding,
	// parking); nil keeps the goroutine-per-connection path. Set at
	// wiring time via SetConnManager, before serving.
	cm *connmgr.Manager

	// Diagnostics token bucket (logRated): peers can mint handshake
	// and session errors at line rate, so those paths are clipped.
	logLim     sync.Mutex
	logTokens  float64
	logLast    time.Duration
	logDropped atomic.Int64

	// Observability (package obs). The registry and rings are created
	// at New and live for the dispatcher; per-protocol instrument
	// blocks are resolved once per session, so the per-request record
	// path is a handful of uncontended atomics.
	reg      *obs.Registry
	stats    atomic.Pointer[map[string]*protoStats]
	latRead  *obs.Histogram // read-lock (concurrent) control-plane path
	latWrite *obs.Histogram // write-lock (serialized) control-plane path
	latXfer  *obs.Histogram // transfer path (queue + data phase)
	ring     *obs.Ring      // sampled recent requests
	slowRing *obs.Ring      // requests over the slow threshold
	slowNs   atomic.Int64
	heat     *obs.HeatMap   // per-file GET demand, feeds replication
	tracer   *obs.Tracer    // distributed span recording

	// Advertisement bandwidth window: per-protocol byte counts at the
	// previous Advertisement call (under mu).
	pubBytes map[string]int64
	pubAt    time.Duration
}

// New wires a dispatcher.
func New(clock sim.Clock, store *storage.Manager, xfer *transfer.Manager) *Dispatcher {
	d := &Dispatcher{
		clock:    clock,
		store:    store,
		xfer:     xfer,
		sessions: make(map[protocol.Session]bool),
		pubBytes: make(map[string]int64),
		pubAt:    clock.Now(),
	}
	d.logTokens = logBurst
	d.logLast = clock.Now()
	d.initObs()
	// The transfer manager records its stage spans (queue wait, data
	// phase, stripes) into the same tracer, so a transfer's tree is
	// complete without extra wiring.
	xfer.SetTracer(d.tracer)
	return d
}

// SetName stamps the appliance's advertised name onto every span the
// dispatcher records (and seeds the fleet-unique ID space). Call at
// wiring time, before serving.
func (d *Dispatcher) SetName(name string) { d.tracer.SetAppliance(name) }

// Tracer returns the dispatcher's span tracer, for components outside
// the request path (replica selection, gridmgr) that contribute spans
// to the same rings.
func (d *Dispatcher) Tracer() *obs.Tracer { return d.tracer }

// SetLogger installs (or clears, with nil) the diagnostics logger.
// Safe to call at any time, including while sessions are being served.
func (d *Dispatcher) SetLogger(l *log.Logger) { d.logger.Store(l) }

// track registers an active session; it reports false (and closes the
// session) when the dispatcher is already shut down.
func (d *Dispatcher) track(s protocol.Session) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.sessions[s] = true
	return true
}

func (d *Dispatcher) untrack(s protocol.Session) {
	d.mu.Lock()
	delete(d.sessions, s)
	d.mu.Unlock()
}

// Store returns the storage manager.
func (d *Dispatcher) Store() *storage.Manager { return d.store }

// Transfers returns the transfer manager.
func (d *Dispatcher) Transfers() *transfer.Manager { return d.xfer }

func (d *Dispatcher) logf(format string, args ...interface{}) {
	if l := d.logger.Load(); l != nil {
		l.Printf(format, args...)
	}
}

// ServeListener accepts connections on ln and drives each through the
// protocol handler. It returns when the listener is closed.
func (d *Dispatcher) ServeListener(ln net.Listener, h protocol.Handler) {
	if !d.Register(ln, h.Proto()) {
		return
	}
	d.serve(ln, h)
}

// Register records a protocol endpoint (so advertisements list it)
// without starting the accept loop; it reports false when the
// dispatcher is closed. Use with Serve for synchronous registration.
func (d *Dispatcher) Register(ln net.Listener, proto string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		ln.Close()
		return false
	}
	d.listeners = append(d.listeners, ln)
	d.protocols = append(d.protocols, proto)
	return true
}

// Serve runs the accept loop for a listener previously Registered.
func (d *Dispatcher) Serve(ln net.Listener, h protocol.Handler) {
	d.serve(ln, h)
}

func (d *Dispatcher) serve(ln net.Listener, h protocol.Handler) {
	proto := h.Proto()
	cm := d.cm
	// With a connection manager, accepted conns feed a bounded queue
	// drained by a fixed handshake-worker pool (accept → admit →
	// handshake → serve); a full queue sheds instead of spawning.
	var queue chan net.Conn
	var hwg sync.WaitGroup
	if cm != nil {
		queue = make(chan net.Conn, acceptQueueDepth)
		for i := 0; i < handshakeWorkers; i++ {
			hwg.Add(1)
			go func() {
				defer hwg.Done()
				for conn := range queue {
					d.admitConn(conn, h, proto)
				}
			}()
		}
		defer func() {
			close(queue)
			hwg.Wait()
		}()
	}
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Shutdown must win over retry: a closing dispatcher's
			// listener error returns immediately instead of sitting out
			// a backoff the closer would have to wait for.
			if errors.Is(err, net.ErrClosed) || d.isClosed() {
				return
			}
			// A transient accept failure (connection aborted in the
			// backlog, descriptor exhaustion) must not take the whole
			// protocol endpoint down: back off and retry, returning
			// only when the listener itself is closed.
			var ne net.Error
			if errors.As(err, &ne) {
				backoff = nextAcceptBackoff(backoff)
				d.logRated("dispatch: %s accept: %v (retrying in %v)", proto, err, backoff)
				time.Sleep(backoff)
				continue
			}
			return
		}
		backoff = 0
		if cm == nil {
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				sess, err := h.NewSession(conn)
				if err != nil {
					d.logRated("dispatch: %s handshake from %s failed: %v", proto, connAddr(conn), err)
					conn.Close()
					return
				}
				d.ServeSession(sess)
			}()
			continue
		}
		select {
		case queue <- conn:
		default:
			cm.ShedOverflow(proto)
			go d.refuseBusy(conn, proto)
		}
	}
}

func (d *Dispatcher) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// ServeSession drives one virtual protocol connection to completion.
//
// Each request is counted per protocol × op (exact counts, one atomic
// add). Latency is recorded into the histogram of the path the
// request took (read-lock, write-lock, or transfer): transfers are
// timed exactly (the data phase dwarfs the clock reads), control-plane
// ops are timed for one request in traceSampleEvery — the unsampled
// fast path takes no extra clock reads, which keeps the dispatcher's
// per-request overhead inside the <5% benchmark budget. Sampled
// requests also record full stage timing into the trace ring, and any
// timed request over the slow threshold lands in the slow-trace ring.
//
// ServeSession never parks: it serves on the calling goroutine until
// the session ends, whatever the front-end configuration — direct
// callers (tests, embedders) rely on the blocking contract. Sessions
// arriving through a listener with a connection manager installed take
// the admitConn path instead, which parks idle parkable sessions.
func (d *Dispatcher) ServeSession(s protocol.Session) {
	cs := &connState{d: d, s: s, proto: s.Proto(), user: s.User()}
	if !d.track(s) {
		s.Close()
		return
	}
	cs.ps = d.protoStatsFor(cs.proto)
	cs.loop()
}

// handleTransfer performs the synchronous approval at the storage
// manager, then hands the data phase to the transfer manager and waits
// for it (the dispatcher stops listening on the client channel while
// the transfer is in flight, paper §2.2). It reports the bytes moved,
// the reply code, and the scheduler queue time for tracing.
func (d *Dispatcher) handleTransfer(s protocol.Session, req *protocol.Request) (int64, int, time.Duration) {
	switch req.Op {
	case protocol.OpGet:
		return d.handleGet(s, req)
	case protocol.OpPut:
		return d.handlePut(s, req)
	}
	return 0, protocol.CodeBadRequest, 0
}

func (d *Dispatcher) await(t *transfer.Transfer) transfer.Result {
	done := make(chan transfer.Result, 1)
	t.OnDone = func(r transfer.Result) {
		d.clock.Unpark()
		done <- r
	}
	d.xfer.Submit(t)
	d.clock.Park()
	return <-done
}

func (d *Dispatcher) handleGet(s protocol.Session, req *protocol.Request) (int64, int, time.Duration) {
	f, size, errRep := d.store.ApproveGet(req)
	if errRep != nil {
		s.Reply(req, errRep)
		return 0, errRep.Code, 0
	}
	defer f.Close()
	sink, err := s.SendData(req, size)
	if err != nil {
		return 0, protocol.CodeInternal, 0
	}
	tr := &transfer.Transfer{
		Class:   req.Proto,
		User:    req.User,
		Path:    storage.Clean(req.Path),
		Offset:  req.Offset,
		Size:    size,
		TraceID: req.TraceID,
		Span:    req.SpanID,
	}
	if !stripeGet(tr, req, f, size, sink) {
		tr.Src = storage.NewSectionReader(f, req.Offset, size)
		tr.Dst = sink
	}
	res := d.await(tr)
	sink.Close()
	rep := protocol.OKReply()
	rep.Size = res.Bytes
	if res.Err != nil {
		rep = protocol.ErrReply(protocol.CodeInternal, "transfer failed: %v", res.Err)
	} else {
		// Per-file GET heat feeds the replication manager's choice of
		// which files are worth mirroring across the fleet.
		d.heat.Touch(tr.Path, res.Bytes)
	}
	s.Reply(req, rep)
	return res.Bytes, rep.Code, res.Queue
}

func (d *Dispatcher) handlePut(s protocol.Session, req *protocol.Request) (int64, int, time.Duration) {
	ticket, errRep := d.store.ApprovePut(req)
	if errRep != nil {
		s.Reply(req, errRep)
		return 0, errRep.Code, 0
	}
	src, err := s.RecvData(req)
	if err != nil {
		d.store.FinishPut(ticket, 0, err)
		return 0, protocol.CodeInternal, 0
	}
	tr := &transfer.Transfer{
		Class:   req.Proto,
		User:    req.User,
		Path:    storage.Clean(req.Path),
		Offset:  req.Offset,
		Size:    req.Size,
		TraceID: req.TraceID,
		Span:    req.SpanID,
	}
	if !stripePut(tr, req, ticket.File, src) {
		tr.Src = src
		tr.Dst = storage.NewOffsetWriter(ticket.File, req.Offset)
	}
	res := d.await(tr)
	src.Close()
	rep := d.store.FinishPut(ticket, res.Bytes, res.Err)
	s.Reply(req, rep)
	return res.Bytes, rep.Code, res.Queue
}

// stripeGet populates tr.Ranges for a striped get when the protocol
// handler asked for parallelism (req.Stripes > 1), the sink can frame
// offset-addressed stripes (FTP MODE E), and the file is large enough
// to partition on extent boundaries. Each stripe reads its own
// SectionReader and writes its own sink at the payload-relative offset;
// it reports whether striping was set up.
func stripeGet(tr *transfer.Transfer, req *protocol.Request, f storage.File, size int64, sink io.WriteCloser) bool {
	if req.Stripes < 2 || size <= 0 {
		return false
	}
	ss, ok := sink.(protocol.StripeSink)
	if !ok {
		return false
	}
	ranges := storage.PartitionStripes(req.Offset, size, req.Stripes)
	if len(ranges) < 2 {
		return false
	}
	for _, r := range ranges {
		tr.Ranges = append(tr.Ranges, transfer.StripeRange{
			Offset: r.Off,
			Size:   r.N,
			Src:    storage.NewSectionReader(f, r.Off, r.N),
			Dst:    ss.SinkAt(r.Off - req.Offset),
		})
	}
	return true
}

// stripePut is the put-side counterpart: it partitions the declared
// size, announces the interior boundaries to the source (so arriving
// blocks are split to stripe ranges), and gives each stripe its own
// range reader and OffsetWriter. Puts with unknown size (-1) cannot
// stripe — there is nothing to partition.
func stripePut(tr *transfer.Transfer, req *protocol.Request, f storage.File, src io.ReadCloser) bool {
	if req.Stripes < 2 || req.Size <= 0 {
		return false
	}
	sSrc, ok := src.(protocol.StripeSource)
	if !ok {
		return false
	}
	ranges := storage.PartitionStripes(req.Offset, req.Size, req.Stripes)
	if len(ranges) < 2 {
		return false
	}
	bounds := make([]int64, 0, len(ranges)-1)
	for _, r := range ranges[1:] {
		bounds = append(bounds, r.Off-req.Offset)
	}
	sSrc.SetStripeBounds(bounds)
	for _, r := range ranges {
		tr.Ranges = append(tr.Ranges, transfer.StripeRange{
			Offset: r.Off,
			Size:   r.N,
			Src:    sSrc.SourceAt(r.Off-req.Offset, r.N),
			Dst:    storage.NewOffsetWriter(f, r.Off),
		})
	}
	return true
}

// Advertisement consolidates resource and data availability into the
// NeST ClassAd published to the Grid (paper §2.1, §6), extended with
// live health: recent per-protocol bandwidth over the window since the
// previous Advertisement call, p99 request latency across all dispatch
// paths, and the transfer queue depth — so the matchmaker can rank
// appliances by current load, not just static capacity.
func (d *Dispatcher) Advertisement(name string) *classad.Ad {
	ad := d.store.Advertisement()
	ad.SetString("Name", name)
	now := d.clock.Now()
	stats := *d.stats.Load()
	d.mu.Lock()
	vals := make([]classad.Value, len(d.protocols))
	addrs := make(map[string]string, len(d.protocols))
	for i, p := range d.protocols {
		vals[i] = classad.Str(p)
		// First listener per protocol wins; the Addr_<proto> attributes
		// make the ad a self-contained endpoint directory for replica
		// selection and peer-to-peer replication.
		if _, ok := addrs[p]; !ok {
			addrs[p] = d.listeners[i].Addr().String()
		}
	}
	elapsed := (now - d.pubAt).Seconds()
	d.pubAt = now
	var totalMBps float64
	perProto := make(map[string]float64, len(stats))
	for p, ps := range stats {
		cur := ps.bytes.Value()
		delta := cur - d.pubBytes[p]
		d.pubBytes[p] = cur
		var mbps float64
		if elapsed > 0 && delta > 0 {
			mbps = float64(delta) / (1 << 20) / elapsed
		}
		perProto[p] = mbps
		totalMBps += mbps
	}
	d.mu.Unlock()
	ad.SetValue("Protocols", classad.List(vals...))
	for p, addr := range addrs {
		ad.SetString("Addr_"+p, addr)
	}
	// The advertised file list feeds the collector's replica catalog:
	// logical name -> set of appliances holding a copy.
	discovery.SetReplicas(ad, d.store.Files(MaxAdvertisedReplicas))
	ad.SetString("Schedule", d.xfer.Policy().Name())
	ad.SetString("ConcurrencyModel", d.xfer.ModelName())
	for p, mbps := range perProto {
		ad.SetReal("RecentBandwidthMBps_"+p, mbps)
	}
	ad.SetReal("RecentBandwidthMBps", totalMBps)
	lat := d.latRead.Snapshot()
	lat.Merge(d.latWrite.Snapshot())
	lat.Merge(d.latXfer.Snapshot())
	ad.SetReal("P99LatencyMs", float64(lat.Quantile(0.99))/1e6)
	ad.SetInt("QueueDepth", d.xfer.QueueDepth())
	// Connection health, when a front end is installed: collectors can
	// constrain on OpenConns/ParkedConns to steer new clients away from
	// connection-saturated appliances.
	if cm := d.cm; cm != nil {
		st := cm.Stats()
		ad.SetInt("OpenConns", st.Active+st.ParkedNow)
		ad.SetInt("ParkedConns", st.ParkedNow)
	}
	ad.SetInt("UpdatedAt", int64(now/time.Millisecond))
	return ad
}

// Publish periodically builds the advertisement and hands it to
// publish until the dispatcher closes. Call in its own goroutine via
// the clock.
func (d *Dispatcher) Publish(name string, every time.Duration, publish func(*classad.Ad)) {
	d.clock.Go(func() {
		for {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return
			}
			publish(d.Advertisement(name))
			d.clock.Sleep(every)
		}
	})
}

// Close stops accepting connections and waits for active sessions.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	lns := d.listeners
	sessions := make([]protocol.Session, 0, len(d.sessions))
	for s := range d.sessions {
		sessions = append(sessions, s)
	}
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	// Closing the manager wakes every parked session with WakeShutdown;
	// each teardown runs inline here and releases its d.wg slot, so the
	// Wait below covers parked connections too.
	if d.cm != nil {
		d.cm.Close()
	}
	d.wg.Wait()
}
