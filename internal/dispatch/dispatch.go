// Package dispatch implements NeST's dispatcher (paper §2.1): the main
// scheduler and macro-request router. It accepts client connections
// through protocol handlers, drives each virtual protocol connection,
// routes data-movement requests to the transfer manager and everything
// else to the storage manager (serialized, in a thread-safe schedule),
// and periodically consolidates resource information into a ClassAd
// for publication into a global scheduling system.
package dispatch

import (
	"io"
	"log"
	"net"
	"sync"
	"time"

	"nest/internal/classad"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// Dispatcher routes requests between the protocol layer, the storage
// manager and the transfer manager.
type Dispatcher struct {
	clock sim.Clock
	store *storage.Manager
	xfer  *transfer.Manager

	// storageMu orders non-transfer requests at the storage manager.
	// Mutating ops take the write lock and execute in the paper's
	// serialized, thread-safe schedule (§2.1); read-only ops (stat,
	// list, ping, statfs, acl_get, lot_status) take the read lock and
	// run concurrently with each other, relying on the reader locks of
	// the components below (acl, lots, quota, cache, memfs).
	storageMu sync.RWMutex

	mu        sync.Mutex
	listeners []net.Listener
	protocols []string
	sessions  map[protocol.Session]bool
	closed    bool
	wg        sync.WaitGroup

	// Logger receives connection-level diagnostics; nil silences.
	Logger *log.Logger
}

// New wires a dispatcher.
func New(clock sim.Clock, store *storage.Manager, xfer *transfer.Manager) *Dispatcher {
	return &Dispatcher{
		clock:    clock,
		store:    store,
		xfer:     xfer,
		sessions: make(map[protocol.Session]bool),
	}
}

// track registers an active session; it reports false (and closes the
// session) when the dispatcher is already shut down.
func (d *Dispatcher) track(s protocol.Session) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.sessions[s] = true
	return true
}

func (d *Dispatcher) untrack(s protocol.Session) {
	d.mu.Lock()
	delete(d.sessions, s)
	d.mu.Unlock()
}

// Store returns the storage manager.
func (d *Dispatcher) Store() *storage.Manager { return d.store }

// Transfers returns the transfer manager.
func (d *Dispatcher) Transfers() *transfer.Manager { return d.xfer }

func (d *Dispatcher) logf(format string, args ...interface{}) {
	if d.Logger != nil {
		d.Logger.Printf(format, args...)
	}
}

// ServeListener accepts connections on ln and drives each through the
// protocol handler. It returns when the listener is closed.
func (d *Dispatcher) ServeListener(ln net.Listener, h protocol.Handler) {
	if !d.Register(ln, h.Proto()) {
		return
	}
	d.serve(ln, h)
}

// Register records a protocol endpoint (so advertisements list it)
// without starting the accept loop; it reports false when the
// dispatcher is closed. Use with Serve for synchronous registration.
func (d *Dispatcher) Register(ln net.Listener, proto string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		ln.Close()
		return false
	}
	d.listeners = append(d.listeners, ln)
	d.protocols = append(d.protocols, proto)
	return true
}

// Serve runs the accept loop for a listener previously Registered.
func (d *Dispatcher) Serve(ln net.Listener, h protocol.Handler) {
	d.serve(ln, h)
}

func (d *Dispatcher) serve(ln net.Listener, h protocol.Handler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			sess, err := h.NewSession(conn)
			if err != nil {
				d.logf("dispatch: %s handshake from %s failed: %v", h.Proto(), conn.RemoteAddr(), err)
				conn.Close()
				return
			}
			d.ServeSession(sess)
		}()
	}
}

// ServeSession drives one virtual protocol connection to completion.
func (d *Dispatcher) ServeSession(s protocol.Session) {
	defer s.Close()
	if !d.track(s) {
		return
	}
	defer d.untrack(s)
	for {
		req, err := s.Next()
		if err != nil {
			if err != io.EOF {
				d.logf("dispatch: %s session: %v", s.Proto(), err)
			}
			return
		}
		req.Proto = s.Proto()
		req.User = s.User()
		req.Arrived = d.clock.Now()
		switch {
		case req.Op == protocol.OpQuit:
			s.Reply(req, protocol.OKReply())
			return
		case req.Op.IsTransfer():
			d.handleTransfer(s, req)
		case req.Op.IsReadOnly():
			d.storageMu.RLock()
			rep := d.store.Execute(req)
			d.storageMu.RUnlock()
			if err := s.Reply(req, rep); err != nil {
				return
			}
		default:
			d.storageMu.Lock()
			rep := d.store.Execute(req)
			d.storageMu.Unlock()
			if err := s.Reply(req, rep); err != nil {
				return
			}
		}
	}
}

// handleTransfer performs the synchronous approval at the storage
// manager, then hands the data phase to the transfer manager and waits
// for it (the dispatcher stops listening on the client channel while
// the transfer is in flight, paper §2.2).
func (d *Dispatcher) handleTransfer(s protocol.Session, req *protocol.Request) {
	switch req.Op {
	case protocol.OpGet:
		d.handleGet(s, req)
	case protocol.OpPut:
		d.handlePut(s, req)
	}
}

func (d *Dispatcher) await(t *transfer.Transfer) transfer.Result {
	done := make(chan transfer.Result, 1)
	t.OnDone = func(r transfer.Result) {
		d.clock.Unpark()
		done <- r
	}
	d.xfer.Submit(t)
	d.clock.Park()
	return <-done
}

func (d *Dispatcher) handleGet(s protocol.Session, req *protocol.Request) {
	f, size, errRep := d.store.ApproveGet(req)
	if errRep != nil {
		s.Reply(req, errRep)
		return
	}
	defer f.Close()
	sink, err := s.SendData(req, size)
	if err != nil {
		return
	}
	res := d.await(&transfer.Transfer{
		Class:  req.Proto,
		User:   req.User,
		Path:   storage.Clean(req.Path),
		Offset: req.Offset,
		Size:   size,
		Src:    io.NewSectionReader(f, req.Offset, size),
		Dst:    sink,
	})
	sink.Close()
	rep := protocol.OKReply()
	rep.Size = res.Bytes
	if res.Err != nil {
		rep = protocol.ErrReply(protocol.CodeInternal, "transfer failed: %v", res.Err)
	}
	s.Reply(req, rep)
}

func (d *Dispatcher) handlePut(s protocol.Session, req *protocol.Request) {
	ticket, errRep := d.store.ApprovePut(req)
	if errRep != nil {
		s.Reply(req, errRep)
		return
	}
	src, err := s.RecvData(req)
	if err != nil {
		d.store.FinishPut(ticket, 0, err)
		return
	}
	res := d.await(&transfer.Transfer{
		Class:  req.Proto,
		User:   req.User,
		Path:   storage.Clean(req.Path),
		Offset: req.Offset,
		Size:   req.Size,
		Src:    src,
		Dst:    io.NewOffsetWriter(ticket.File, req.Offset),
	})
	src.Close()
	rep := d.store.FinishPut(ticket, res.Bytes, res.Err)
	s.Reply(req, rep)
}

// Advertisement consolidates resource and data availability into the
// NeST ClassAd published to the Grid (paper §2.1, §6).
func (d *Dispatcher) Advertisement(name string) *classad.Ad {
	ad := d.store.Advertisement()
	ad.SetString("Name", name)
	d.mu.Lock()
	vals := make([]classad.Value, len(d.protocols))
	for i, p := range d.protocols {
		vals[i] = classad.Str(p)
	}
	d.mu.Unlock()
	ad.SetValue("Protocols", classad.List(vals...))
	ad.SetString("Schedule", d.xfer.Policy().Name())
	ad.SetString("ConcurrencyModel", d.xfer.ModelName())
	ad.SetInt("UpdatedAt", int64(d.clock.Now()/time.Millisecond))
	return ad
}

// Publish periodically builds the advertisement and hands it to
// publish until the dispatcher closes. Call in its own goroutine via
// the clock.
func (d *Dispatcher) Publish(name string, every time.Duration, publish func(*classad.Ad)) {
	d.clock.Go(func() {
		for {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return
			}
			publish(d.Advertisement(name))
			d.clock.Sleep(every)
		}
	})
}

// Close stops accepting connections and waits for active sessions.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	lns := d.listeners
	sessions := make([]protocol.Session, 0, len(d.sessions))
	for s := range d.sessions {
		sessions = append(sessions, s)
	}
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, s := range sessions {
		s.Close()
	}
	d.wg.Wait()
}
