package dispatch_test

import (
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/connmgr"
	"nest/internal/dispatch"
	"nest/internal/httpx"
	"nest/internal/protocol"
	"nest/internal/sim"
)

// serveProto wires one protocol listener into d and returns its
// address.
func serveProto(t *testing.T, d *dispatch.Dispatcher, h protocol.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Register(ln, h.Proto()) {
		t.Fatal("register refused")
	}
	go d.Serve(ln, h)
	return ln.Addr().String()
}

// serveHTTP wires an HTTP listener with the dispatcher's status pages
// installed (so /healthz works over the wire).
func serveHTTP(t *testing.T, d *dispatch.Dispatcher) string {
	t.Helper()
	h := httpx.NewHandler()
	h.SetStatus(d.StatusPage)
	return serveProto(t, d, h)
}

// waitCond polls cond for up to two seconds.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChirpQuotaBusy: past the per-protocol quota a new Chirp
// connection is refused with the busy greeting the client library
// surfaces as ErrBusy, and releasing the held connection re-opens
// admission.
func TestChirpQuotaBusy(t *testing.T) {
	d, _ := newDispatcher(t)
	cm := connmgr.New(connmgr.Config{MaxPerProto: 1})
	d.SetConnManager(cm)
	addr := serveProto(t, d, chirp.NewHandler(nil, true))

	c1, err := chirp.Dial(addr, nil)
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	waitCond(t, "admission", func() bool { return cm.Stats().Admitted == 1 })

	if _, err := chirp.Dial(addr, nil); err != chirp.ErrBusy {
		t.Fatalf("second dial error = %v, want ErrBusy", err)
	}
	if st := cm.Stats(); st.Refused != 1 {
		t.Fatalf("refused = %d", st.Refused)
	}

	c1.Close()
	waitCond(t, "release", func() bool {
		st := cm.Stats()
		return st.Active == 0 && st.ParkedNow == 0
	})
	c2, err := chirp.Dial(addr, nil)
	if err != nil {
		t.Fatalf("dial after release: %v", err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	c2.Close()
}

// TestHTTPShed503: with the overload shedder tripped, a new HTTP
// connection gets a protocol-correct 503 with Retry-After and the shed
// counter moves.
func TestHTTPShed503(t *testing.T) {
	d, _ := newDispatcher(t)
	depth := atomic.Int64{}
	depth.Store(1000)
	cm := connmgr.New(connmgr.Config{
		ShedQueueDepth: 1,
		Signals:        connmgr.Signals{QueueDepth: depth.Load},
		SignalPeriod:   time.Nanosecond,
	})
	d.SetConnManager(cm)
	addr := serveHTTP(t, d)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /x HTTP/1.1\r\nHost: t\r\n\r\n")
	body, _ := io.ReadAll(conn)
	resp := string(body)
	if !strings.HasPrefix(resp, "HTTP/1.1 503") {
		t.Fatalf("response = %q, want 503", resp)
	}
	if !strings.Contains(resp, "Retry-After:") {
		t.Fatalf("response lacks Retry-After: %q", resp)
	}
	waitCond(t, "shed count", func() bool { return cm.Stats().Shed >= 1 })

	// Recovery: signal drops, the 1ns cache lapses, service resumes.
	depth.Store(0)
	waitCond(t, "recovery", func() bool {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return false
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET /healthz HTTP/1.0\r\n\r\n")
		body, _ := io.ReadAll(conn)
		return strings.HasPrefix(string(body), "HTTP/1.1 200")
	})
}

// TestConnsPageAndMetrics: the front end's counters are visible on
// /conns and /metrics, and an idle keep-alive session shows up parked
// (goroutine released, connection in the poller).
func TestConnsPageAndMetrics(t *testing.T) {
	d, _ := newDispatcher(t)
	cm := connmgr.New(connmgr.Config{})
	d.SetConnManager(cm)
	addr := serveHTTP(t, d)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A freshly admitted session with nothing to read parks before its
	// first request.
	waitCond(t, "parked session", func() bool { return cm.Stats().ParkedNow == 1 })

	page, ok := d.StatusPage("/conns")
	if !ok {
		t.Fatal("/conns not served")
	}
	for _, want := range []string{"per-protocol connections", "http", "admitted: 1"} {
		if !strings.Contains(page, want) {
			t.Fatalf("/conns missing %q:\n%s", want, page)
		}
	}
	metrics, _ := d.StatusPage("/metrics")
	for _, want := range []string{
		"nest_connmgr_admitted_total 1",
		"nest_connmgr_parked_total 1",
		"nest_connmgr_parked 1",
		"nest_dispatch_log_dropped_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestAdvertisementConnHealth: the ClassAd carries OpenConns and
// ParkedConns, and a collector-style constraint over them evaluates.
func TestAdvertisementConnHealth(t *testing.T) {
	d, _ := newDispatcher(t)
	cm := connmgr.New(connmgr.Config{})
	d.SetConnManager(cm)
	cm.Admit("chirp")
	cm.Admit("chirp")

	ad := d.Advertisement("n1")
	open, ok := ad.EvalAttr("OpenConns", nil).IntVal()
	if !ok || open != 2 {
		t.Fatalf("OpenConns = %v %v", open, ok)
	}
	if _, ok := ad.EvalAttr("ParkedConns", nil).IntVal(); !ok {
		t.Fatal("ParkedConns missing")
	}
	expr, err := classad.ParseExpr("OpenConns < 10 && ParkedConns == 0")
	if err != nil {
		t.Fatal(err)
	}
	if !expr.Eval(&classad.Env{Self: ad}).IsTrue() {
		t.Fatal("healthy constraint did not match")
	}
	expr, _ = classad.ParseExpr("OpenConns < 2")
	if expr.Eval(&classad.Env{Self: ad}).IsTrue() {
		t.Fatal("saturation constraint matched a loaded appliance")
	}
}

// errSession's Next always fails: every ServeSession emits exactly one
// session-error diagnostic.
type errSession struct{ fakeSession }

func (s *errSession) Next() (*protocol.Request, error) {
	return nil, fmt.Errorf("scripted failure")
}

// countWriter counts log lines written through it.
type countWriter struct {
	mu    sync.Mutex
	lines int
}

func (w *countWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.lines++
	w.mu.Unlock()
	return len(p), nil
}

// TestSessionLogRateLimit: session-error diagnostics are clipped by
// the token bucket and the overflow is counted, not written.
func TestSessionLogRateLimit(t *testing.T) {
	d, _ := newDispatcher(t)
	w := &countWriter{}
	d.SetLogger(log.New(w, "", 0))
	const n = 200
	for i := 0; i < n; i++ {
		d.ServeSession(&errSession{})
	}
	w.mu.Lock()
	lines := w.lines
	w.mu.Unlock()
	if lines >= n {
		t.Fatalf("all %d error lines written; rate limit inert", lines)
	}
	if lines == 0 {
		t.Fatal("rate limit swallowed everything (burst must pass)")
	}
	metrics, _ := d.StatusPage("/metrics")
	var dropped int64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "nest_dispatch_log_dropped_total ") {
			fmt.Sscanf(line, "nest_dispatch_log_dropped_total %d", &dropped)
		}
	}
	if int(dropped)+lines != n {
		t.Fatalf("written %d + dropped %d != %d", lines, dropped, n)
	}
}

// TestConcurrentDialers floods the front end with 1000 concurrent
// keep-alive HTTP dialers (run under -race in CI): every connection
// must get either a 200 or a protocol-correct 503, parking must engage
// for idle sessions, and the books must balance back to zero after the
// storm.
func TestConcurrentDialers(t *testing.T) {
	d, _ := newDispatcher(t)
	cm := connmgr.New(connmgr.Config{Clock: sim.NewRealClock()})
	d.SetConnManager(cm)
	addr := serveHTTP(t, d)

	const dialers = 1000
	var ok200, ok503, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				failed.Add(1)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
			buf := make([]byte, 512)
			n, err := conn.Read(buf)
			if err != nil {
				failed.Add(1)
				return
			}
			resp := string(buf[:n])
			switch {
			case strings.HasPrefix(resp, "HTTP/1.1 200"):
				ok200.Add(1)
			case strings.HasPrefix(resp, "HTTP/1.1 503"):
				ok503.Add(1)
			default:
				failed.Add(1)
				return
			}
			// Linger briefly so the idle session parks, then hang up.
			time.Sleep(5 * time.Millisecond)
		}()
	}
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d dialers failed (200: %d, 503: %d)", failed.Load(), ok200.Load(), ok503.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no dialer was served")
	}
	st := cm.Stats()
	if st.Parked == 0 {
		t.Error("no session ever parked during the storm")
	}
	waitCond(t, "books balanced", func() bool {
		st := cm.Stats()
		return st.Active == 0 && st.ParkedNow == 0
	})
	t.Logf("served=%d shed=%d parked=%d resumed=%d", ok200.Load(), ok503.Load(), st.Parked, st.Resumed)
}
