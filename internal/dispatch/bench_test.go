package dispatch_test

import (
	"io"
	"testing"

	"nest/internal/protocol"
)

// benchSession feeds the dispatcher read-only control-plane requests
// for as long as the parallel benchmark wants them, then EOFs.
type benchSession struct {
	pb   *testing.PB
	reqs []*protocol.Request
	i    int
}

func (s *benchSession) Proto() string { return "bench" }
func (s *benchSession) User() string  { return "tester" }

func (s *benchSession) Next() (*protocol.Request, error) {
	if !s.pb.Next() {
		return nil, io.EOF
	}
	req := s.reqs[s.i%len(s.reqs)]
	s.i++
	return req, nil
}

func (s *benchSession) Reply(req *protocol.Request, rep *protocol.Reply) error { return nil }

func (s *benchSession) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	return nil, io.ErrClosedPipe
}

func (s *benchSession) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	return nil, io.ErrClosedPipe
}

func (s *benchSession) Close() error { return nil }

// BenchmarkControlPlaneParallel measures read-only control-plane
// throughput (stat + list through ServeSession) under concurrency.
// With the dispatcher's shared-lock fast path these ops scale with
// GOMAXPROCS instead of serializing on one mutex.
func BenchmarkControlPlaneParallel(b *testing.B) {
	d, store := newDispatcher(b)
	if err := store.FS().Mkdir("/data", "tester"); err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"/data/a", "/data/b", "/data/c"} {
		f, err := store.FS().Create(name, "tester")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := &benchSession{pb: pb, reqs: []*protocol.Request{
			{Op: protocol.OpStat, Path: "/data/a"},
			{Op: protocol.OpList, Path: "/data"},
			{Op: protocol.OpStat, Path: "/data/b"},
			{Op: protocol.OpPing},
		}}
		d.ServeSession(s)
	})
}
