package dispatch_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"nest/internal/protocol"
)

// streamSession feeds the dispatcher a fixed script of requests and
// collects every reply, from whatever goroutine drives it.
type streamSession struct {
	reqs    []*protocol.Request
	i       int
	replies []*protocol.Reply
}

func (s *streamSession) Proto() string { return "stress" }
func (s *streamSession) User() string  { return "tester" }

func (s *streamSession) Next() (*protocol.Request, error) {
	if s.i >= len(s.reqs) {
		return nil, io.EOF
	}
	req := s.reqs[s.i]
	s.i++
	return req, nil
}

func (s *streamSession) Reply(req *protocol.Request, rep *protocol.Reply) error {
	s.replies = append(s.replies, rep)
	return nil
}

func (s *streamSession) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	return nil, io.ErrClosedPipe
}

func (s *streamSession) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	return nil, io.ErrClosedPipe
}

func (s *streamSession) Close() error { return nil }

// TestConcurrentControlPlane hammers the dispatcher with parallel
// read-only sessions (stat/list/ping/statfs) interleaved with mutating
// sessions (mkdir/remove cycles) and checks the replies stay
// consistent: reads on stable paths always succeed, and every mutating
// session observes its own serialized schedule (mkdir then rmdir of a
// private directory never conflicts). Run under -race this doubles as
// the data-race check for the shared-lock fast path.
func TestConcurrentControlPlane(t *testing.T) {
	d, store := newDispatcher(t)
	if err := store.FS().Mkdir("/stable", "tester"); err != nil {
		t.Fatal(err)
	}
	f, err := store.FS().Create("/stable/f", "tester")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	const (
		readers = 8
		writers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := make([]*protocol.Request, 0, 4*rounds)
			for i := 0; i < rounds; i++ {
				reqs = append(reqs,
					&protocol.Request{Op: protocol.OpStat, Path: "/stable/f"},
					&protocol.Request{Op: protocol.OpList, Path: "/stable"},
					&protocol.Request{Op: protocol.OpPing},
					&protocol.Request{Op: protocol.OpStatfs},
				)
			}
			s := &streamSession{reqs: reqs}
			d.ServeSession(s)
			if len(s.replies) != len(reqs) {
				t.Errorf("reader: %d replies for %d requests", len(s.replies), len(reqs))
				return
			}
			for i, rep := range s.replies {
				if !rep.OK() {
					t.Errorf("reader: reply %d (%v) = %+v", i, reqs[i].Op, rep)
					return
				}
				if reqs[i].Op == protocol.OpStat && rep.Size != 4 {
					t.Errorf("reader: stat size = %d, want 4", rep.Size)
					return
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/w%d", w)
			reqs := make([]*protocol.Request, 0, 2*rounds)
			for i := 0; i < rounds; i++ {
				reqs = append(reqs,
					&protocol.Request{Op: protocol.OpMkdir, Path: dir},
					&protocol.Request{Op: protocol.OpRmdir, Path: dir},
				)
			}
			s := &streamSession{reqs: reqs}
			d.ServeSession(s)
			if len(s.replies) != len(reqs) {
				t.Errorf("writer %d: %d replies for %d requests", w, len(s.replies), len(reqs))
				return
			}
			// Each writer owns its directory, and its own ops are
			// serialized by the session; with mutating ops exclusive at
			// the dispatcher every mkdir/rmdir pair must succeed.
			for i, rep := range s.replies {
				if !rep.OK() {
					t.Errorf("writer %d: reply %d (%v) = %+v", w, i, reqs[i].Op, rep)
					return
				}
			}
		}(w)
	}

	wg.Wait()

	// The namespace settled: only /stable remains.
	infos, err := store.FS().List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "stable" {
		t.Errorf("final root listing = %+v", infos)
	}
}
