package dispatch

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"nest/internal/obs"
	"nest/internal/protocol"
	"nest/internal/transfer"
)

// traceSampleEvery selects which requests get full stage timing
// recorded into the trace ring: one in every traceSampleEvery per
// session. Slow requests are always traced regardless of sampling.
// The width amortizes the sampled path's clock reads and ring write
// to ~1 ns/request on the control-plane fast path.
const traceSampleEvery = 32

// DefaultSlowThreshold is the latency above which a request is always
// recorded in the slow-trace ring.
const DefaultSlowThreshold = 100 * time.Millisecond

// traceRingSize bounds both trace rings (entries, fixed memory).
const traceRingSize = 256

// spanRingSize bounds the distributed-tracing span ring. Spans are
// recorded for every request plus every transfer stage, so the ring is
// wider than the sampled trace rings.
const spanRingSize = 1024

// protoStats is one protocol's instrument block: a fixed-width per-op
// counter array (indexed by protocol.Op, sized by protocol.OpCount so
// recording is an array index plus an atomic add — no map, no lock),
// error counters (total plus a per-op × per-reply-code grid, so
// /metrics distinguishes failure modes), and the transfer payload
// bytes moved for the protocol (both directions; feeds the
// advertisement's recent bandwidth window).
type protoStats struct {
	ops      [protocol.OpCount]obs.Counter
	errors   obs.Counter
	errCodes [protocol.OpCount][protocol.CodeCount]obs.Counter
	bytes    obs.Counter
}

// countError charges one failed request to the aggregate and the
// per-op × per-code counters.
func (ps *protoStats) countError(op protocol.Op, code int) {
	ps.errors.Inc()
	if op > 0 && op < protocol.OpCount && code > 0 && code < protocol.CodeCount {
		ps.errCodes[op][code].Inc()
	}
}

// initObs builds the dispatcher's registry, rings and histograms and
// registers the exposition hooks. Called once from New.
func (d *Dispatcher) initObs() {
	d.reg = obs.NewRegistry()
	empty := make(map[string]*protoStats)
	d.stats.Store(&empty)
	d.latRead = d.reg.Histogram("nest_dispatch_latency_read_ns")
	d.latWrite = d.reg.Histogram("nest_dispatch_latency_write_ns")
	d.latXfer = d.reg.Histogram("nest_dispatch_latency_transfer_ns")
	d.ring = obs.NewRing(traceRingSize)
	d.slowRing = obs.NewRing(traceRingSize)
	d.slowNs.Store(int64(DefaultSlowThreshold))
	d.heat = obs.NewHeatMap()
	d.tracer = obs.NewTracer("nest", spanRingSize)
	d.tracer.SetSlowThreshold(DefaultSlowThreshold)

	d.reg.Func("nest_dispatch_hot_paths", func() int64 { return d.heat.Len() })

	d.reg.Func("nest_transfer_queue_depth", func() int64 { return d.xfer.Stats().QueueDepth })
	d.reg.Func("nest_transfer_submits_total", func() int64 { return d.xfer.Stats().Submits })
	d.reg.Func("nest_transfer_admissions_total", func() int64 { return d.xfer.Stats().Admissions })
	d.reg.Func("nest_transfer_preemptions_total", func() int64 { return d.xfer.Stats().Preemptions })
	// Data-path mode split: chunks moved by the zero-copy extent handoff
	// vs the pooled-buffer pump fallback (process-wide, like the extent
	// allocator counters — the pumps are shared machinery).
	d.reg.Func("nest_datapath_handoff_chunks_total", func() int64 {
		h, _ := transfer.DataPathStats()
		return h
	})
	d.reg.Func("nest_datapath_pooled_chunks_total", func() int64 {
		_, p := transfer.DataPathStats()
		return p
	})
	// Striped-transfer counters: how many transfers fanned out across
	// parallel stripe pumps, the width of the most recent one, and how
	// many are in flight right now (process-wide, like the data-path
	// counters).
	d.reg.Func("nest_striped_transfers_total", func() int64 {
		total, _ := transfer.StripedStats()
		return total
	})
	d.reg.Func("nest_striped_last_width", func() int64 {
		_, width := transfer.StripedStats()
		return width
	})
	d.reg.Func("nest_striped_active", func() int64 {
		return int64(len(transfer.ActiveStriped()))
	})
	d.reg.Func("nest_dispatch_log_dropped_total", func() int64 { return d.logDropped.Load() })
	d.reg.Func("nest_trace_drops_total", func() int64 { return d.ring.Drops() + d.slowRing.Drops() })
	d.reg.Func("nest_span_drops_total", func() int64 { return d.tracer.Drops() })

	// Per-protocol × per-op request counts, errors and bytes: a labeled
	// family whose members appear as protocols connect, emitted from
	// the copy-on-write stats map at exposition time.
	d.reg.Collect(func(emit obs.Emit) {
		stats := *d.stats.Load()
		protos := make([]string, 0, len(stats))
		for p := range stats {
			protos = append(protos, p)
		}
		sort.Strings(protos)
		for _, p := range protos {
			ps := stats[p]
			for op := protocol.Op(1); op < protocol.OpCount; op++ {
				if n := ps.ops[op].Value(); n > 0 {
					emit(fmt.Sprintf("nest_dispatch_op_total{proto=%q,op=%q}", p, op), float64(n))
				}
			}
			emit(fmt.Sprintf("nest_dispatch_errors_total{proto=%q}", p), float64(ps.errors.Value()))
			for op := protocol.Op(1); op < protocol.OpCount; op++ {
				for code := 1; code < protocol.CodeCount; code++ {
					if n := ps.errCodes[op][code].Value(); n > 0 {
						emit(fmt.Sprintf("nest_dispatch_errors_total{proto=%q,op=%q,code=%q}",
							p, op, protocol.CodeLabel(code)), float64(n))
					}
				}
			}
			emit(fmt.Sprintf("nest_dispatch_bytes_total{proto=%q}", p), float64(ps.bytes.Value()))
		}
	})
}

// HotPaths returns the k most-requested file paths by GET count — the
// demand signal the replication manager mirrors against.
func (d *Dispatcher) HotPaths(k int) []obs.HeatEntry { return d.heat.Top(k) }

// Obs returns the dispatcher's metrics registry so the appliance can
// register component gauges (storage, cache, bufpool, lots, quota)
// into the same exposition.
func (d *Dispatcher) Obs() *obs.Registry { return d.reg }

// Traces returns the sampled recent-request traces, newest first.
func (d *Dispatcher) Traces() []obs.Trace { return d.ring.Snapshot() }

// SlowTraces returns recent requests that exceeded the slow threshold,
// newest first.
func (d *Dispatcher) SlowTraces() []obs.Trace { return d.slowRing.Snapshot() }

// SetSlowThreshold adjusts the latency above which every request is
// traced (flat trace ring and slow span index alike). Zero or negative
// disables slow tracing.
func (d *Dispatcher) SetSlowThreshold(t time.Duration) {
	d.slowNs.Store(int64(t))
	d.tracer.SetSlowThreshold(t)
}

// recordSpan records the request's own span: its trace identity,
// causal parent (propagated from the peer, if any), reply code and
// latency. Sampled-out control ops pass total=0 — identity without
// timing, at the cost of one ring write and no clock reads.
func (d *Dispatcher) recordSpan(req *protocol.Request, code int, bytes int64, arrived, total time.Duration) {
	d.tracer.Record(&obs.Span{
		Trace: req.TraceID, ID: req.SpanID, Parent: req.ParentSpan,
		Stage: "request", Proto: req.Proto, Op: req.Op.String(),
		User: req.User, Path: req.Path, Code: code, Bytes: bytes,
		Start: arrived, Dur: total,
	})
}

// protoStatsFor resolves (or creates) the instrument block for one
// protocol. Sessions call it once; the map is copy-on-write so the
// per-request path reads it without locks.
func (d *Dispatcher) protoStatsFor(proto string) *protoStats {
	if ps := (*d.stats.Load())[proto]; ps != nil {
		return ps
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := *d.stats.Load()
	if ps := old[proto]; ps != nil {
		return ps
	}
	next := make(map[string]*protoStats, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	ps := &protoStats{}
	next[proto] = ps
	d.stats.Store(&next)
	return ps
}

// maybeTrace records the request into the sampled ring (when sampled)
// and the slow ring (when total exceeds the threshold). wait is only
// meaningful for sampled requests; it is clamped to zero otherwise.
func (d *Dispatcher) maybeTrace(sampled bool, req *protocol.Request, code int, bytes int64, arrived, wait, total time.Duration) {
	slow := d.slowNs.Load()
	isSlow := slow > 0 && int64(total) >= slow
	if !sampled && !isSlow {
		return
	}
	if wait < 0 {
		wait = 0
	}
	tr := obs.Trace{
		ID:      req.TraceID,
		Proto:   req.Proto,
		Op:      req.Op.String(),
		User:    req.User,
		Path:    req.Path,
		Code:    code,
		Bytes:   bytes,
		Start:   arrived,
		Wait:    wait,
		Service: total - wait,
		Total:   total,
	}
	if sampled {
		d.ring.Record(&tr)
	}
	if isSlow {
		d.slowRing.Record(&tr)
	}
}

// StatusPage serves the observability endpoints from whatever HTTP
// surface the appliance exposes: "/metrics" is the machine-readable
// registry text, "/statusz" a human summary with recent and slow
// traces, "/healthz" a liveness probe, "/traces" the rendered span
// trees ("/traces.json" the raw spans, "/traces/<hex id>" one trace's
// spans as JSON — the unit nestctl merges across appliances). It
// reports false for paths it does not own, so protocol handlers fall
// through to normal file ops.
func (d *Dispatcher) StatusPage(path string) (string, bool) {
	switch path {
	case "/metrics":
		return d.reg.Text(), true
	case "/healthz":
		return "ok\n", true
	case "/statusz":
		return d.statusz(), true
	case "/conns":
		return d.connsPage(), true
	case "/traces":
		return d.tracesPage(), true
	case "/traces.json":
		return spanJSON(d.tracer.Snapshot()), true
	case "/traces/slow":
		return d.slowTracesPage(), true
	}
	if strings.HasPrefix(path, "/traces/") {
		id, err := strconv.ParseUint(strings.TrimPrefix(path, "/traces/"), 16, 64)
		if err != nil {
			return "bad trace id (want hex)\n", true
		}
		return spanJSON(d.tracer.Spans(id)), true
	}
	return "", false
}

// spanJSON renders spans as a JSON array (always an array, never
// null, so clients can merge without nil checks).
func spanJSON(spans []obs.Span) string {
	if spans == nil {
		spans = []obs.Span{}
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return "[]\n"
	}
	return string(b) + "\n"
}

// tracesPage renders the recent and slow trace trees.
func (d *Dispatcher) tracesPage() string {
	var b strings.Builder
	b.WriteString("NeST traces\n===========\n\n")
	fmt.Fprintf(&b, "appliance: %s   span ring: %d entries   drops: %d   slow threshold: %v\n",
		d.tracer.Appliance(), spanRingSize, d.tracer.Drops(), d.tracer.SlowThreshold())
	b.WriteString("(spans recorded here only; merge /traces/<id> across appliances for federated trees)\n")

	spans := d.tracer.Snapshot()
	byTrace := make(map[uint64][]obs.Span, len(spans))
	order := make([]uint64, 0, len(spans))
	for _, s := range spans {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	const maxTrees = 8
	fmt.Fprintf(&b, "\nrecent traces (%d, newest first)\n", len(order))
	shown := 0
	for i := len(order) - 1; i >= 0 && shown < maxTrees; i-- {
		id := order[i]
		fmt.Fprintf(&b, "\ntrace %x (%d spans)\n", id, len(byTrace[id]))
		obs.WriteTree(&b, obs.AssembleTrace(byTrace[id]))
		shown++
	}

	b.WriteString("\n")
	d.writeSlowTraces(&b, maxTrees)
	return b.String()
}

// slowTracesPage renders only the slow-trace trees ("/traces/slow",
// nestctl traces -slow).
func (d *Dispatcher) slowTracesPage() string {
	var b strings.Builder
	b.WriteString("NeST slow traces\n================\n\n")
	fmt.Fprintf(&b, "appliance: %s   slow threshold: %v\n",
		d.tracer.Appliance(), d.tracer.SlowThreshold())
	d.writeSlowTraces(&b, 16)
	return b.String()
}

// writeSlowTraces appends up to max slow-trace trees, newest first.
func (d *Dispatcher) writeSlowTraces(b *strings.Builder, max int) {
	slow := d.tracer.SlowRoots()
	fmt.Fprintf(b, "\nslow traces (%d, newest first)\n", len(slow))
	shown := 0
	seen := make(map[uint64]bool)
	for i := len(slow) - 1; i >= 0 && shown < max; i-- {
		id := slow[i].Trace
		if seen[id] {
			continue
		}
		seen[id] = true
		fmt.Fprintf(b, "\ntrace %x\n", id)
		obs.WriteTree(b, obs.AssembleTrace(d.tracer.Spans(id)))
		shown++
	}
}

func (d *Dispatcher) statusz() string {
	var b strings.Builder
	b.WriteString("NeST appliance status\n=====================\n\n")

	fmt.Fprintf(&b, "schedule: %s   concurrency: %s\n", d.xfer.Policy().Name(), d.xfer.ModelName())
	ts := d.xfer.Stats()
	fmt.Fprintf(&b, "transfer queue depth: %d   submits: %d   admissions: %d   preemptions: %d\n",
		ts.QueueDepth, ts.Submits, ts.Admissions, ts.Preemptions)
	handoff, pooled := transfer.DataPathStats()
	fmt.Fprintf(&b, "data path chunks: zero-copy handoff: %d   pooled pump: %d\n", handoff, pooled)
	stripedTotal, stripedWidth := transfer.StripedStats()
	fmt.Fprintf(&b, "striped transfers: %d total   last width: %d\n", stripedTotal, stripedWidth)
	fmt.Fprintf(&b, "trace rings: trace drops: %d   span drops: %d\n\n",
		d.ring.Drops()+d.slowRing.Drops(), d.tracer.Drops())

	if active := transfer.ActiveStriped(); len(active) > 0 {
		b.WriteString("active striped transfers\n")
		for _, st := range active {
			fmt.Fprintf(&b, "  %-8s %-12s %s  width=%d  %d/%d bytes\n",
				st.Class, st.User, st.Path, len(st.Stripes), st.Moved, st.Size)
			for i, sp := range st.Stripes {
				fmt.Fprintf(&b, "    stripe %d [%d,%d)  %d/%d bytes\n",
					i, sp.Offset, sp.Offset+sp.Size, sp.Moved, sp.Size)
			}
		}
		b.WriteString("\n")
	}

	b.WriteString("dispatch latency (ns)\n")
	fmt.Fprintf(&b, "  %-10s %10s %12s %12s %12s\n", "path", "count", "p50", "p95", "p99")
	for _, row := range []struct {
		name string
		h    *obs.Histogram
	}{{"read", d.latRead}, {"write", d.latWrite}, {"transfer", d.latXfer}} {
		s := row.h.Snapshot()
		fmt.Fprintf(&b, "  %-10s %10d %12d %12d %12d\n",
			row.name, s.Count, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	}
	b.WriteString("\nper-protocol requests\n")
	stats := *d.stats.Load()
	protos := make([]string, 0, len(stats))
	for p := range stats {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		ps := stats[p]
		var total int64
		var ops []string
		for op := protocol.Op(1); op < protocol.OpCount; op++ {
			if n := ps.ops[op].Value(); n > 0 {
				total += n
				ops = append(ops, fmt.Sprintf("%s=%d", op, n))
			}
		}
		fmt.Fprintf(&b, "  %-8s total=%d errors=%d bytes=%d  %s\n",
			p, total, ps.errors.Value(), ps.bytes.Value(), strings.Join(ops, " "))
	}

	writeTraces := func(title string, traces []obs.Trace) {
		fmt.Fprintf(&b, "\n%s (%d)\n", title, len(traces))
		max := len(traces)
		if max > 16 {
			max = 16
		}
		for _, t := range traces[:max] {
			fmt.Fprintf(&b, "  #%-6d %-8s %-10s code=%d bytes=%-10d wait=%-12s total=%-12s %s\n",
				t.ID, t.Proto, t.Op, t.Code, t.Bytes, t.Wait, t.Total, t.Path)
		}
	}
	if hot := d.HotPaths(8); len(hot) > 0 {
		b.WriteString("\nhot files (GET demand)\n")
		for _, e := range hot {
			fmt.Fprintf(&b, "  %8d gets %12d bytes  %s\n", e.Count, e.Bytes, e.Key)
		}
	}

	writeTraces("recent traces (sampled)", d.Traces())
	writeTraces("slow traces", d.SlowTraces())

	b.WriteString("\nmetrics\n-------\n")
	d.reg.WriteText(&b)
	return b.String()
}
