// Connection front end: the dispatcher side of package connmgr.
//
// With a connection manager installed (SetConnManager), the accept
// path becomes accept → admit → handshake → serve, with three
// departures from the goroutine-per-connection seed behavior:
//
//   - Admission: freshly accepted connections pass per-protocol quota
//     and overload-shed checks before a handshake is attempted, and a
//     bounded per-listener accept queue feeds a small pool of
//     handshake workers so a flood of new connections cannot spawn
//     unbounded goroutines. Refused connections get a protocol-correct
//     busy reply (HTTP 503 + Retry-After, Chirp -ERR busy, FTP 421).
//   - Parking: sessions whose protocol is framed request/response
//     (protocol.Parkable) release their goroutine between requests;
//     the connection waits in the manager's poller and readiness
//     re-dispatches the session onto the manager's worker pool.
//   - Idle reaping: parked connections idle past the manager's
//     IdleTimeout are closed by the manager's sweeper; running
//     sessions get a read deadline so a dead client cannot pin a
//     goroutine in Next forever.
//
// Without a manager the dispatcher behaves exactly as before: one
// goroutine per connection for its whole life, no quotas, no shedding.
package dispatch

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"nest/internal/connmgr"
	"nest/internal/gsi"
	"nest/internal/obs"
	"nest/internal/protocol"
)

const (
	// acceptQueueDepth bounds each listener's accept queue: connections
	// accepted but not yet through admission + handshake. A full queue
	// sheds (the handshake workers are saturated, so the appliance is
	// past the point where queueing helps).
	acceptQueueDepth = 128
	// handshakeWorkers is the per-listener pool draining that queue.
	handshakeWorkers = 4
	// handshakeTimeout bounds the whole protocol handshake so a stalled
	// client cannot pin a handshake worker.
	handshakeTimeout = 5 * time.Second
	// busyWriteTimeout bounds the courtesy busy reply to a refused
	// connection.
	busyWriteTimeout = 2 * time.Second
)

// SetConnManager installs the connection front end and registers its
// metrics. Call at wiring time, before serving. The dispatcher owns
// the manager from here on: Dispatcher.Close closes it.
func (d *Dispatcher) SetConnManager(cm *connmgr.Manager) {
	d.cm = cm
	d.reg.Func("nest_connmgr_admitted_total", func() int64 { return cm.Stats().Admitted })
	d.reg.Func("nest_connmgr_refused_total", func() int64 { return cm.Stats().Refused })
	d.reg.Func("nest_connmgr_shed_total", func() int64 { return cm.Stats().Shed })
	d.reg.Func("nest_connmgr_parked_total", func() int64 { return cm.Stats().Parked })
	d.reg.Func("nest_connmgr_resumed_total", func() int64 { return cm.Stats().Resumed })
	d.reg.Func("nest_connmgr_reaped_total", func() int64 { return cm.Stats().Reaped })
	d.reg.Func("nest_connmgr_active", func() int64 { return cm.Stats().Active })
	d.reg.Func("nest_connmgr_parked", func() int64 { return cm.Stats().ParkedNow })
	d.reg.Collect(func(emit obs.Emit) {
		for proto, pc := range cm.PerProto() {
			emit(fmt.Sprintf("nest_connmgr_conns{proto=%q,state=%q}", proto, "active"), float64(pc.Active))
			emit(fmt.Sprintf("nest_connmgr_conns{proto=%q,state=%q}", proto, "parked"), float64(pc.Parked))
			emit(fmt.Sprintf("nest_connmgr_refused_total{proto=%q}", proto), float64(pc.Refused))
			emit(fmt.Sprintf("nest_connmgr_shed_total{proto=%q}", proto), float64(pc.Shed))
		}
	})
}

// ConnManager returns the installed connection front end (nil if
// none).
func (d *Dispatcher) ConnManager() *connmgr.Manager { return d.cm }

// MergedP99 merges the three dispatch-path latency histograms into the
// single p99 the advertisement publishes — and the overload shedder
// samples.
func (d *Dispatcher) MergedP99() time.Duration {
	lat := d.latRead.Snapshot()
	lat.Merge(d.latWrite.Snapshot())
	lat.Merge(d.latXfer.Snapshot())
	return time.Duration(lat.Quantile(0.99))
}

// connsPage renders the /conns status page: manager totals plus the
// per-protocol active/parked/refused/shed table nestctl status conns
// shows.
func (d *Dispatcher) connsPage() string {
	var b strings.Builder
	b.WriteString("NeST connections\n================\n\n")
	cm := d.cm
	if cm == nil {
		b.WriteString("no connection manager installed (goroutine-per-connection mode)\n")
		return b.String()
	}
	st := cm.Stats()
	fmt.Fprintf(&b, "open: %d (active %d, parked %d)\n", st.Active+st.ParkedNow, st.Active, st.ParkedNow)
	fmt.Fprintf(&b, "admitted: %d   refused (quota): %d   shed (overload): %d\n",
		st.Admitted, st.Refused, st.Shed)
	fmt.Fprintf(&b, "parks: %d   resumes: %d   idle reaps: %d\n", st.Parked, st.Resumed, st.Reaped)
	fmt.Fprintf(&b, "overloaded now: %v   idle timeout: %v\n", cm.Overloaded(), cm.IdleTimeout())
	fmt.Fprintf(&b, "log lines dropped (rate limit): %d\n", d.logDropped.Load())
	b.WriteString("\nper-protocol connections\n")
	fmt.Fprintf(&b, "  %-8s %8s %8s %10s %10s\n", "proto", "active", "parked", "refused", "shed")
	pp := cm.PerProto()
	protos := make([]string, 0, len(pp))
	for p := range pp {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		pc := pp[p]
		fmt.Fprintf(&b, "  %-8s %8d %8d %10d %10d\n", p, pc.Active, pc.Parked, pc.Refused, pc.Shed)
	}
	return b.String()
}

// logRated is d.logf behind a token bucket, for log lines an abusive
// or flapping peer can mint at line rate (handshake failures, session
// read errors, accept retries). Suppressed lines are counted in
// nest_dispatch_log_dropped_total rather than written.
func (d *Dispatcher) logRated(format string, args ...interface{}) {
	if d.logger.Load() == nil {
		return
	}
	now := d.clock.Now()
	d.logLim.Lock()
	d.logTokens += (now - d.logLast).Seconds() * logRefillPerSec
	d.logLast = now
	if d.logTokens > logBurst {
		d.logTokens = logBurst
	}
	ok := d.logTokens >= 1
	if ok {
		d.logTokens--
	}
	d.logLim.Unlock()
	if !ok {
		d.logDropped.Add(1)
		return
	}
	d.logf(format, args...)
}

const (
	// logBurst and logRefillPerSec shape the diagnostics token bucket:
	// bursts up to logBurst lines pass, sustained logging is clipped to
	// logRefillPerSec lines/second.
	logBurst        = 32
	logRefillPerSec = 16
)

// admitConn runs on a handshake worker: admission, handshake under a
// deadline, per-user quota binding, then the session's serve loop on
// its own goroutine (which parks itself when the protocol allows).
func (d *Dispatcher) admitConn(conn net.Conn, h protocol.Handler, proto string) {
	switch d.cm.Admit(proto) {
	case connmgr.Admitted:
	default:
		d.refuseBusy(conn, proto)
		return
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	sess, err := h.NewSession(conn)
	if err != nil {
		d.cm.Release(proto, "")
		d.logRated("dispatch: %s handshake from %s failed: %v", proto, connAddr(conn), err)
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	user := sess.User()
	boundUser := ""
	if user != "" && user != gsi.Anonymous {
		if !d.cm.BindUser(user) {
			// The handshake already succeeded, so the refusal rides the
			// established connection: the client's next read sees the
			// busy line (Chirp) or 503 (HTTP) and the close.
			d.cm.Release(proto, "")
			d.refuseBusy(conn, proto)
			sess.Close()
			return
		}
		boundUser = user
	}
	cs := &connState{
		d: d, s: sess, conn: conn,
		proto: proto, user: user, boundUser: boundUser,
		managed: true,
	}
	if p, ok := sess.(protocol.Parkable); ok {
		cs.park = p
	}
	if !d.track(sess) {
		d.cm.Release(proto, boundUser)
		sess.Close()
		return
	}
	cs.ps = d.protoStatsFor(proto)
	d.wg.Add(1)
	cs.inWG = true
	go cs.loop()
}

// refuseBusy writes the protocol's busy refusal and closes the
// connection, under a short write deadline so a wedged peer cannot
// stall the refusal path. The refusal is traced (a zero-duration span)
// so shed connections show up in /traces alongside the load that
// caused them.
func (d *Dispatcher) refuseBusy(conn net.Conn, proto string) {
	conn.SetWriteDeadline(time.Now().Add(busyWriteTimeout))
	// Wire literals, not handler imports: the dispatcher must not
	// depend on the protocol packages (they are wired above it).
	switch proto {
	case "chirp":
		fmt.Fprintf(conn, "-ERR %d server busy\n", protocol.CodeBusy)
	case "http":
		io.WriteString(conn, "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 5\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
	case "ftp", "gridftp":
		io.WriteString(conn, "421 Service not available, closing control connection.\r\n")
	}
	conn.Close()
	d.tracer.Record(&obs.Span{
		Trace: d.tracer.NewTraceID(), ID: d.tracer.NewSpanID(),
		Stage: "refused", Proto: proto, Op: "connect",
		Code: protocol.CodeBusy, Start: d.clock.Now(),
	})
}

// connAddr names a peer for diagnostics; fake connections in tests may
// have no address.
func connAddr(conn net.Conn) string {
	if a := conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// connState is one connection's serve state, factored out of the
// per-connection goroutine's stack so the session survives parking:
// when the goroutine is released the state waits with the connection
// in the manager and the wake re-enters the loop on a pool worker.
type connState struct {
	d    *Dispatcher
	s    protocol.Session
	park protocol.Parkable // nil: session cannot park
	conn net.Conn          // nil on the ServeSession compatibility path

	proto     string
	user      string
	boundUser string // principal charged by BindUser ("" if none)
	ps        *protoStats
	nreq      uint64
	managed   bool // admitted through the connection manager
	inWG      bool
	done      sync.Once
}

// loop drives requests until the session ends or parks. Parking is
// tried before each blocking read — including the first, so an
// idle-open connection costs no goroutine from the start.
func (cs *connState) loop() {
	for {
		if cs.tryPark() {
			return
		}
		if cs.step() {
			cs.finish()
			return
		}
	}
}

// tryPark releases the goroutine if the session is parkable and has no
// buffered input (a buffered request must be served now — the poller
// only sees the socket).
func (cs *connState) tryPark() bool {
	if !cs.managed || cs.park == nil || cs.d.cm == nil {
		return false
	}
	if cs.park.Buffered() > 0 {
		return false
	}
	return cs.d.cm.Park(cs.conn, cs.proto, cs.onWake)
}

// onWake re-enters the request loop on a manager worker. Readable (and
// hangup — the read path must observe the EOF) wakes serve; reap and
// shutdown wakes tear down.
func (cs *connState) onWake(reason connmgr.WakeReason) {
	if !reason.Readable() {
		cs.finish()
		return
	}
	for {
		if cs.step() {
			cs.finish()
			return
		}
		if cs.tryPark() {
			return
		}
	}
}

// finish tears the session down exactly once, whichever of the serve
// loop, a reap, or shutdown gets there first.
func (cs *connState) finish() {
	cs.done.Do(func() {
		cs.s.Close()
		cs.d.untrack(cs.s)
		if cs.managed {
			cs.d.cm.Release(cs.proto, cs.boundUser)
		}
		if cs.inWG {
			cs.d.wg.Done()
		}
	})
}

// next reads the session's next request, under the manager's idle
// deadline when one is configured: a client that stalls mid-request
// holds a goroutine (it cannot be parked), so the deadline is what
// bounds it. The deadline is cleared before the request is served —
// transfer bodies are paced by the data path, not the idle policy.
func (cs *connState) next() (*protocol.Request, error) {
	if cs.managed && cs.conn != nil {
		if idle := cs.d.cm.IdleTimeout(); idle > 0 {
			cs.conn.SetReadDeadline(time.Now().Add(idle))
			req, err := cs.s.Next()
			cs.conn.SetReadDeadline(time.Time{})
			return req, err
		}
	}
	return cs.s.Next()
}

// step serves one request; it reports whether the session is done.
// The accounting is ServeSession's documented contract: per-proto × op
// counts on every request, exact latency for transfers, sampled
// latency (1 in traceSampleEvery) for control ops, spans for all.
func (cs *connState) step() bool {
	d, s := cs.d, cs.s
	req, err := cs.next()
	if err != nil {
		if err != io.EOF {
			d.logRated("dispatch: %s session: %v", cs.proto, err)
		}
		return true
	}
	req.Proto = cs.proto
	req.User = cs.user
	arrived := d.clock.Now()
	req.Arrived = arrived
	cs.nreq++
	sampled := cs.nreq%traceSampleEvery == 0
	// Every request gets a trace identity: the protocol handler's
	// propagated context wins (the request is then a child in a
	// remote caller's tree), a fresh fleet-unique ID is minted
	// otherwise. Sampled-out control ops keep their identity too —
	// their spans record with zero duration, no extra clock reads —
	// so no request ever vanishes from a trace tree.
	if req.TraceID == 0 {
		req.TraceID = d.tracer.NewTraceID()
	}
	req.SpanID = d.tracer.NewSpanID()
	ps := cs.ps
	if req.Op < protocol.OpCount {
		ps.ops[req.Op].Inc()
	}
	switch {
	case req.Op == protocol.OpQuit:
		s.Reply(req, protocol.OKReply())
		return true
	case req.Op.IsTransfer():
		bytes, code, queued := d.handleTransfer(s, req)
		total := d.clock.Now() - arrived
		d.latXfer.Observe(int64(total))
		ps.bytes.Add(bytes)
		if code != protocol.CodeOK {
			ps.countError(req.Op, code)
		}
		d.maybeTrace(sampled, req, code, bytes, arrived, queued, total)
		d.recordSpan(req, code, bytes, arrived, total)
	case req.Op.IsReadOnly():
		var lockAt time.Duration
		d.storageMu.RLock()
		if sampled {
			lockAt = d.clock.Now()
		}
		rep := d.store.Execute(req)
		d.storageMu.RUnlock()
		if rep.Code != protocol.CodeOK {
			ps.countError(req.Op, rep.Code)
		}
		if sampled {
			total := d.clock.Now() - arrived
			d.latRead.Observe(int64(total))
			d.maybeTrace(true, req, rep.Code, 0, arrived, lockAt-arrived, total)
			d.recordSpan(req, rep.Code, 0, arrived, total)
		} else {
			d.recordSpan(req, rep.Code, 0, arrived, 0)
		}
		if err := s.Reply(req, rep); err != nil {
			return true
		}
	default:
		var lockAt time.Duration
		d.storageMu.Lock()
		if sampled {
			lockAt = d.clock.Now()
		}
		rep := d.store.Execute(req)
		d.storageMu.Unlock()
		if rep.Code != protocol.CodeOK {
			ps.countError(req.Op, rep.Code)
		}
		if sampled {
			total := d.clock.Now() - arrived
			d.latWrite.Observe(int64(total))
			d.maybeTrace(true, req, rep.Code, 0, arrived, lockAt-arrived, total)
			d.recordSpan(req, rep.Code, 0, arrived, total)
		} else {
			d.recordSpan(req, rep.Code, 0, arrived, 0)
		}
		if err := s.Reply(req, rep); err != nil {
			return true
		}
	}
	return false
}
