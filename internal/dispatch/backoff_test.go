package dispatch

import (
	"testing"
	"time"
)

// TestNextAcceptBackoff pins the accept-retry schedule: 5ms doubling
// to a 1s cap, and the cap is absorbing. The reset to zero lives in
// serve()'s accept loop (after any successful accept) — together they
// bound how long a closing dispatcher can sit in a retry sleep.
func TestNextAcceptBackoff(t *testing.T) {
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		320 * time.Millisecond, 640 * time.Millisecond, time.Second, time.Second,
	}
	var cur time.Duration
	for i, w := range want {
		cur = nextAcceptBackoff(cur)
		if cur != w {
			t.Fatalf("step %d: backoff = %v, want %v", i, cur, w)
		}
	}
	if d := nextAcceptBackoff(0); d != 5*time.Millisecond {
		t.Fatalf("reset restart = %v, want 5ms", d)
	}
	if d := nextAcceptBackoff(2 * time.Second); d != time.Second {
		t.Fatalf("over-cap input = %v, want clamped 1s", d)
	}
}
